(* Tests for the static-analysis passes (lib/analysis).

   Coverage: one unit test per rule per pass, the seeded defect fixtures,
   the pre-flight guards, the checked counter arithmetic satellites, and
   property tests: models that pass the lint presolve without Infeasible,
   and injected mutations (duplicated row, flipped sense, dropped bound)
   each caught by their named rule. *)

open Numeric
open Platform

let q = Q.of_int

let le terms rhs m = Ilp.Model.add_constraint m (Ilp.Linexpr.of_terms terms) Ilp.Model.Le rhs
let ge terms rhs m = Ilp.Model.add_constraint m (Ilp.Linexpr.of_terms terms) Ilp.Model.Ge rhs
let eq terms rhs m = Ilp.Model.add_constraint m (Ilp.Linexpr.of_terms terms) Ilp.Model.Eq rhs

let bounds_of m =
  let n = Ilp.Model.num_vars m in
  ( Array.init n (fun v -> (Ilp.Model.var_info m v).Ilp.Model.lb),
    Array.init n (fun v -> (Ilp.Model.var_info m v).Ilp.Model.ub) )

let rules ds = List.map (fun d -> d.Analysis.Diag.rule) ds

let has_rule ?severity rule ds =
  List.exists
    (fun d ->
       d.Analysis.Diag.rule = rule
       && match severity with None -> true | Some s -> d.Analysis.Diag.severity = s)
    ds

let check_rule ?severity msg rule ds =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected rule %s in [%s]" msg rule
       (String.concat "; " (rules ds)))
    true
    (has_rule ?severity rule ds)

let check_clean msg ds =
  Alcotest.(check (list string)) msg [] (rules (Analysis.Diag.errors ds))

(* --- Diag ------------------------------------------------------------------ *)

let test_diag_sort_and_counts () =
  let ds =
    [
      Analysis.Diag.info ~rule:"i" ~path:[ "a" ] "third";
      Analysis.Diag.error ~rule:"e" ~path:[ "b" ] "first";
      Analysis.Diag.warning ~rule:"w" ~path:[ "c" ] "second";
    ]
  in
  Alcotest.(check (list string)) "sorted by severity" [ "e"; "w"; "i" ]
    (rules (Analysis.Diag.sort ds));
  Alcotest.(check int) "errors" 1 (Analysis.Diag.count ds Analysis.Diag.Error);
  Alcotest.(check int) "warnings" 1 (Analysis.Diag.count ds Analysis.Diag.Warning);
  Alcotest.(check bool) "has_errors" true (Analysis.Diag.has_errors ds);
  Alcotest.(check int) "by_rule" 1 (List.length (Analysis.Diag.by_rule ds "w"))

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_diag_json () =
  let d =
    Analysis.Diag.error ~equation:"Eq. 21" ~rule:"r" ~path:[ "a"; "b" ]
      "message with \"quotes\" and \\ backslash"
  in
  let j = Analysis.Diag.to_json d in
  Alcotest.(check bool) "escapes quotes" true (contains j "\\\"quotes\\\"");
  Alcotest.(check bool) "escapes backslash" true (contains j "\\\\ backslash");
  Alcotest.(check bool) "cites equation" true (contains j "\"equation\": \"Eq. 21\"");
  let report = Analysis.Diag.report_to_json [ d ] in
  Alcotest.(check bool) "report has counts" true
    (contains report "\"errors\": 1")

let test_diag_prefix () =
  let d = Analysis.Diag.info ~rule:"r" ~path:[ "x" ] "m" in
  match Analysis.Diag.prefix [ "p"; "q" ] [ d ] with
  | [ d' ] ->
    Alcotest.(check (list string)) "prefixed" [ "p"; "q"; "x" ] d'.Analysis.Diag.path
  | _ -> Alcotest.fail "prefix changed list length"

(* --- Model lint ------------------------------------------------------------- *)

let test_model_clean () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~ub:(q 10) "x" in
  let y = Ilp.Model.add_var m ~ub:(q 10) "y" in
  le [ (Q.one, x); (Q.one, y) ] (q 12) m;
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  check_clean "well-formed model" (Analysis.Model_lint.check m)

let test_model_bound_contradiction () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~lb:(q 5) ~ub:(q 2) "x" in
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  check_rule ~severity:Analysis.Diag.Error "lb > ub" "var-bound-contradiction"
    (Analysis.Model_lint.check m)

let test_model_unused_var () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~ub:(q 1) "x" in
  let _y = Ilp.Model.add_var m ~ub:(q 1) "y" in
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  check_rule ~severity:Analysis.Diag.Warning "unused y" "var-unused"
    (Analysis.Model_lint.check m)

let test_model_duplicate_row () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~ub:(q 9) "x" in
  le [ (q 2, x) ] (q 7) m;
  le [ (q 2, x) ] (q 7) m;
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  check_rule ~severity:Analysis.Diag.Warning "identical rows" "row-duplicate"
    (Analysis.Model_lint.check m)

let test_model_dominated_row () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~ub:(q 100) "x" in
  le [ (Q.one, x) ] (q 7) m;
  le [ (Q.one, x) ] (q 50) m;
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  check_rule ~severity:Analysis.Diag.Warning "weaker row" "row-dominated"
    (Analysis.Model_lint.check m)

let test_model_eq_conflict () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~ub:(q 10) "x" in
  eq [ (Q.one, x) ] (q 3) m;
  eq [ (Q.one, x) ] (q 4) m;
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  check_rule ~severity:Analysis.Diag.Error "conflicting equalities"
    "row-contradiction" (Analysis.Model_lint.check m)

let test_model_activity_contradiction () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~ub:(q 2) "x" in
  ge [ (Q.one, x) ] (q 4) m;
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  check_rule ~severity:Analysis.Diag.Error "x <= 2 vs x >= 4" "row-contradiction"
    (Analysis.Model_lint.check m)

let test_model_redundant_row () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~ub:(q 2) "x" in
  le [ (Q.one, x) ] (q 100) m;
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  check_rule ~severity:Analysis.Diag.Info "slack row" "row-redundant"
    (Analysis.Model_lint.check m)

let test_model_objective_unbounded () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m "x" in
  (* x >= 1 does not cap the maximisation *)
  ge [ (Q.one, x) ] Q.one m;
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  check_rule ~severity:Analysis.Diag.Error "no upward cap" "objective-unbounded"
    (Analysis.Model_lint.check m)

let test_model_objective_possibly_unbounded () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m "x" in
  let y = Ilp.Model.add_var m ~ub:(q 5) "y" in
  (* x + y <= 9 caps x upward, so only a warning remains *)
  le [ (Q.one, x); (Q.one, y) ] (q 9) m;
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  let ds = Analysis.Model_lint.check m in
  check_rule ~severity:Analysis.Diag.Warning "capped by a row"
    "objective-possibly-unbounded" ds;
  Alcotest.(check bool) "not an error" false (Analysis.Diag.has_errors ds)

(* --- Counter lint ------------------------------------------------------------ *)

let counters ?(ccnt = 1_000_000) ?(ps = 100) ?(ds = 100) ?(pm = 2) ?(dmc = 2)
    ?(dmd = 0) () =
  {
    Counters.ccnt;
    pmem_stall = ps;
    dmem_stall = ds;
    pcache_miss = pm;
    dcache_miss_clean = dmc;
    dcache_miss_dirty = dmd;
  }

let test_counters_clean () =
  check_clean "plausible reading"
    (Analysis.Counter_lint.check ~path:[ "c" ] (counters ()))

let test_counters_negative () =
  check_rule ~severity:Analysis.Diag.Error "negative read-out" "counter-negative"
    (Analysis.Counter_lint.check ~path:[ "c" ] (counters ~pm:(-3) ()))

let test_counters_stall_exceeds_ccnt () =
  check_rule ~severity:Analysis.Diag.Error "stalls > cycles" "stall-exceeds-ccnt"
    (Analysis.Counter_lint.check ~path:[ "c" ] (counters ~ccnt:50 ~ps:80 ()))

let test_counters_pm_stall_soft_vs_hard () =
  (* 50 I-cache misses cannot fit in 0 stall cycles *)
  let c = counters ~pm:50 ~ps:0 () in
  check_rule ~severity:Analysis.Diag.Warning "warning without tailoring"
    "pm-stall-inconsistent"
    (Analysis.Counter_lint.check ~path:[ "c" ] c);
  (* scenario1 asserts PM counts SRI code requests exactly -> hard error *)
  check_rule ~severity:Analysis.Diag.Error "error under scenario1"
    "pm-stall-inconsistent"
    (Analysis.Counter_lint.check ~scenario:Scenario.scenario1 ~path:[ "c" ] c)

let test_counters_dm_stall () =
  check_rule "DMC+DMD vs DS" "dm-stall-inconsistent"
    (Analysis.Counter_lint.check ~path:[ "c" ]
       (counters ~dmc:30 ~dmd:20 ~ds:0 ()))

let test_counters_window () =
  let before = counters ~ccnt:100 ~ps:10 () in
  let after = counters ~ccnt:500 ~ps:60 () in
  Alcotest.(check (list string)) "monotone window" []
    (rules (Analysis.Counter_lint.check_window ~path:[ "w" ] ~before ~after));
  check_rule ~severity:Analysis.Diag.Error "regressing window"
    "counter-window-negative"
    (Analysis.Counter_lint.check_window ~path:[ "w" ] ~before:after ~after:before)

(* --- Scenario lint ------------------------------------------------------------ *)

let test_scenarios_bundled_clean () =
  List.iter
    (fun s ->
       Alcotest.(check (list string))
         (Printf.sprintf "%s is clean" s.Scenario.name)
         []
         (rules (Analysis.Scenario_lint.check s)))
    Scenario.all

let test_scenario_zero_contradicted () =
  let deployment =
    Deployment.make_exn ~name:"d"
      [
        {
          Deployment.kind = Op.Data;
          place = Deployment.Shared (Target.Lmu, Deployment.Non_cacheable);
          label = "shared-data";
        };
      ]
  in
  let s =
    {
      Scenario.name = "s";
      description = "";
      deployment;
      specs = [ Scenario.Zero (Target.Lmu, Op.Data) ];
    }
  in
  check_rule ~severity:Analysis.Diag.Error "zero vs own traffic"
    "zero-spec-contradicted"
    (Analysis.Scenario_lint.check s)

let test_scenario_tailoring_incomplete () =
  let deployment =
    Deployment.make_exn ~name:"d"
      [
        {
          Deployment.kind = Op.Code;
          place = Deployment.Shared (Target.Pf0, Deployment.Cacheable);
          label = "code0";
        };
        {
          Deployment.kind = Op.Code;
          place = Deployment.Shared (Target.Pf1, Deployment.Cacheable);
          label = "code1";
        };
      ]
  in
  let s =
    {
      Scenario.name = "s";
      description = "";
      deployment;
      specs = [ Scenario.Code_sum_equals_pcache_miss [ Target.Pf0 ] ];
    }
  in
  check_rule ~severity:Analysis.Diag.Error "pf1 omitted" "tailoring-incomplete"
    (Analysis.Scenario_lint.check s)

let test_scenario_tailoring_inapplicable () =
  let s =
    {
      Scenario.name = "s";
      description = "";
      deployment = Scenario.scenario1.Scenario.deployment;
      specs = [ Scenario.Data_sum_at_least_dcache_misses [ Target.Dfl ] ];
    }
  in
  check_rule ~severity:Analysis.Diag.Error "dfl cannot hold cacheable data"
    "tailoring-inapplicable"
    (Analysis.Scenario_lint.check s)

(* --- Program lint -------------------------------------------------------------- *)

let prog name items = Tcsim.Program.make ~name items

let task label core program = { Analysis.Program_lint.label; core; program }

let test_program_unmapped () =
  let p =
    prog "p" [ Tcsim.Program.I { pc = 0x0000_1000; kind = Tcsim.Program.Compute 1 } ]
  in
  check_rule ~severity:Analysis.Diag.Error "hole in the map" "address-unmapped"
    (Analysis.Program_lint.check [ task "t" 0 p ])

let test_program_code_from_dfl () =
  let p =
    prog "p"
      [
        Tcsim.Program.I
          { pc = Tcsim.Memory_map.dfl_base; kind = Tcsim.Program.Compute 1 };
      ]
  in
  check_rule ~severity:Analysis.Diag.Error "fetch from data flash" "code-from-dfl"
    (Analysis.Program_lint.check [ task "t" 0 p ])

let test_program_unreachable_loop () =
  let p =
    prog "p"
      [
        Tcsim.Program.Loop
          {
            count = 0;
            body =
              [
                Tcsim.Program.I
                  { pc = Tcsim.Memory_map.pspr_base; kind = Tcsim.Program.Compute 1 };
              ];
          };
      ]
  in
  check_rule ~severity:Analysis.Diag.Warning "count-0 loop" "loop-unreachable"
    (Analysis.Program_lint.check [ task "t" 0 p ])

let load_lmu name =
  prog name
    (Tcsim.Program.seq ~pc_base:Tcsim.Memory_map.pspr_base
       [ Tcsim.Program.Load Tcsim.Memory_map.lmu_uncached_base ])

let test_program_cross_core_overlap () =
  check_rule ~severity:Analysis.Diag.Error "same LMU line, two cores" "map-overlap"
    (Analysis.Program_lint.check [ task "a" 0 (load_lmu "a"); task "b" 1 (load_lmu "b") ])

let test_program_same_core_sharing_ok () =
  check_clean "same-core tasks may share"
    (Analysis.Program_lint.check
       [ task "a" 0 (load_lmu "a"); task "b" 0 (load_lmu "b") ])

let test_program_code_data_overlap () =
  (* cached fetch and uncached load of the same physical LMU line: the
     canonical line identity must see through the alias *)
  let p =
    prog "p"
      [
        Tcsim.Program.I
          {
            pc = Tcsim.Memory_map.lmu_cached_base;
            kind = Tcsim.Program.Load Tcsim.Memory_map.lmu_uncached_base;
          };
      ]
  in
  check_rule ~severity:Analysis.Diag.Warning "aliased line" "code-data-overlap"
    (Analysis.Program_lint.check [ task "t" 0 p ])

let test_program_zero_traffic_mismatch () =
  (* scenario1 declares pf data traffic impossible *)
  let p =
    prog "p"
      (Tcsim.Program.seq ~pc_base:Tcsim.Memory_map.pspr_base
         [ Tcsim.Program.Load Tcsim.Memory_map.pf0_cached_base ])
  in
  check_rule ~severity:Analysis.Diag.Warning "pf0 data under scenario1"
    "zero-traffic-mismatch"
    (Analysis.Program_lint.check ~scenario:Scenario.scenario1 [ task "t" 0 p ])

(* --- fixtures & preflight -------------------------------------------------------- *)

let test_fixtures_all_detected () =
  List.iter
    (fun f ->
       check_rule ~severity:Analysis.Diag.Error f.Analysis.Fixtures.fname
         f.Analysis.Fixtures.expected_rule
         (f.Analysis.Fixtures.diags ()))
    Analysis.Fixtures.all

let test_preflight_guard () =
  Analysis.Preflight.guard [ Analysis.Diag.warning ~rule:"w" ~path:[] "soft" ];
  Alcotest.check_raises "errors raise"
    (Analysis.Preflight.Preflight_failed
       [ "error[e] x: hard" ])
    (fun () ->
       Analysis.Preflight.guard [ Analysis.Diag.error ~rule:"e" ~path:[ "x" ] "hard" ])

let test_preflight_bundled_runs () =
  (* the guards wired into the experiments must accept the bundled setups *)
  List.iter
    (fun scenario ->
       let variant = Workload.Control_loop.variant_of_scenario scenario in
       Analysis.Preflight.run ~scenario
         ~tasks:
           [
             task "app" 0 (Workload.Control_loop.app variant);
             task "contender" 1
               (Workload.Load_gen.make ~variant ~level:Workload.Load_gen.High ());
           ]
         ())
    [ Scenario.scenario1; Scenario.scenario2 ]

(* --- satellite: checked counter arithmetic ----------------------------------------- *)

let test_sub_exn () =
  let before = counters ~ccnt:100 ~ps:10 () in
  let after = counters ~ccnt:500 ~ps:60 () in
  Alcotest.(check bool) "delta matches sub" true
    (Counters.equal (Counters.sub_exn after before) (Counters.sub after before));
  (match Counters.sub_exn before after with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument msg ->
     let lower = String.lowercase_ascii msg in
     Alcotest.(check bool) "names the field" true
       (contains lower "ccnt" || contains lower "stall"))

let test_scale_div_contract () =
  let c = counters ~ccnt:5 ~ps:5 ~ds:5 ~pm:5 ~dmc:5 ~dmd:5 () in
  (* ceiling division: ceil(5 * 1 / 2) = 3 *)
  let h = Counters.scale_div c ~num:1 ~den:2 in
  Alcotest.(check int) "rounds up" 3 h.Counters.ccnt;
  (* num = 0 is a legitimate annihilator by default... *)
  Alcotest.(check bool) "zero scaling accepted" true
    (Counters.equal (Counters.scale_div c ~num:0 ~den:1) Counters.zero);
  (* ...but rejected where a degenerate template would be meaningless *)
  (match Counters.scale_div ~require_positive:true c ~num:0 ~den:1 with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ());
  (match Counters.scale_div c ~num:1 ~den:0 with
   | _ -> Alcotest.fail "expected Invalid_argument on den = 0"
   | exception Invalid_argument _ -> ())

(* --- properties -------------------------------------------------------------------- *)

(* Feasible-by-construction random models: pick an integer point, make every
   bound and row satisfied at that point. The lint must report no errors and
   presolve must not declare Infeasible. *)

type rand_model = {
  point : int array;
  ubs : int array;
  rows : (int array * Ilp.Model.sense * int) list;
  maximize : bool;
  obj : int array;
}

let gen_feasible =
  let open QCheck.Gen in
  int_range 1 4 >>= fun nvars ->
  array_repeat nvars (int_range 0 5) >>= fun point ->
  array_repeat nvars (int_range 0 5) >>= fun slack ->
  let ubs = Array.mapi (fun i s -> point.(i) + s) slack in
  let dot coeffs = Array.fold_left ( + ) 0 (Array.mapi (fun i c -> c * point.(i)) coeffs) in
  int_range 1 5 >>= fun nrows ->
  list_repeat nrows
    ( array_repeat nvars (int_range (-3) 3) >>= fun coeffs ->
      oneofl [ Ilp.Model.Le; Ilp.Model.Ge; Ilp.Model.Eq ] >>= fun sense ->
      int_range 0 5 >|= fun s ->
      let v = dot coeffs in
      let rhs =
        match sense with
        | Ilp.Model.Le -> v + s
        | Ilp.Model.Ge -> v - s
        | Ilp.Model.Eq -> v
      in
      (coeffs, sense, rhs) )
  >>= fun rows ->
  array_repeat nvars (int_range (-3) 3) >>= fun obj ->
  bool >|= fun maximize -> { point; ubs; rows; maximize; obj }

let to_model r =
  let m = Ilp.Model.create () in
  let vars =
    Array.mapi
      (fun i u -> Ilp.Model.add_var m ~integer:true ~ub:(q u) (Printf.sprintf "x%d" i))
      r.ubs
  in
  List.iter
    (fun (coeffs, sense, rhs) ->
       let terms =
         Array.to_list (Array.mapi (fun i c -> (q c, vars.(i))) coeffs)
         |> List.filter (fun (c, _) -> not (Q.is_zero c))
       in
       Ilp.Model.add_constraint m (Ilp.Linexpr.of_terms terms) sense (q rhs))
    r.rows;
  Ilp.Model.set_objective m
    (if r.maximize then Ilp.Model.Maximize else Ilp.Model.Minimize)
    (Ilp.Linexpr.of_terms
       (Array.to_list (Array.mapi (fun i c -> (q c, vars.(i))) r.obj)));
  m

let prop_lint_accepts_feasible =
  QCheck.Test.make ~name:"lint-clean feasible boxes pass presolve" ~count:300
    (QCheck.make gen_feasible) (fun r ->
        let m = to_model r in
        let lint_ok = not (Analysis.Diag.has_errors (Analysis.Model_lint.check m)) in
        let lb, ub = bounds_of m in
        let presolve_ok =
          match Ilp.Presolve.tighten m ~lb ~ub with
          | Ilp.Presolve.Tightened _ -> true
          | Ilp.Presolve.Infeasible -> false
        in
        lint_ok && presolve_ok)

let prop_mutation_duplicate_row =
  QCheck.Test.make ~name:"mutation: duplicated row is caught" ~count:200
    (QCheck.make gen_feasible) (fun r ->
        let m = to_model r in
        (match Ilp.Model.constraints m with
         | c :: _ ->
           Ilp.Model.add_constraint m c.Ilp.Model.expr c.Ilp.Model.csense
             c.Ilp.Model.rhs
         | [] -> QCheck.assume_fail ());
        has_rule "row-duplicate" (Analysis.Model_lint.check m))

let prop_mutation_flipped_sense =
  QCheck.Test.make ~name:"mutation: flipped sense is caught" ~count:200
    (QCheck.make gen_feasible) (fun r ->
        let m = to_model r in
        (* Σ x_i <= Σ ub_i + 1 holds everywhere; the Ge flip holds nowhere *)
        let terms =
          List.init (Array.length r.ubs) (fun i -> (Q.one, i))
        in
        let beyond = q (Array.fold_left ( + ) 1 r.ubs) in
        Ilp.Model.add_constraint m (Ilp.Linexpr.of_terms terms) Ilp.Model.Ge
          beyond;
        has_rule ~severity:Analysis.Diag.Error "row-contradiction"
          (Analysis.Model_lint.check m))

let test_mutation_dropped_bound () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~ub:(q 5) "x" in
  ge [ (Q.one, x) ] Q.one m;
  Ilp.Model.set_objective m Ilp.Model.Maximize (Ilp.Linexpr.var x);
  check_clean "bounded original" (Analysis.Model_lint.check m);
  Ilp.Model.set_var_bounds m x ~lb:(Some Q.zero) ~ub:None;
  check_rule ~severity:Analysis.Diag.Error "dropped upper bound"
    "objective-unbounded" (Analysis.Model_lint.check m)

(* --- runner -------------------------------------------------------------------------- *)

let () =
  Alcotest.run "analysis"
    [
      ( "diag",
        [
          Alcotest.test_case "sort and counts" `Quick test_diag_sort_and_counts;
          Alcotest.test_case "json rendering" `Quick test_diag_json;
          Alcotest.test_case "path prefix" `Quick test_diag_prefix;
        ] );
      ( "model-lint",
        [
          Alcotest.test_case "clean model" `Quick test_model_clean;
          Alcotest.test_case "bound contradiction" `Quick test_model_bound_contradiction;
          Alcotest.test_case "unused variable" `Quick test_model_unused_var;
          Alcotest.test_case "duplicate row" `Quick test_model_duplicate_row;
          Alcotest.test_case "dominated row" `Quick test_model_dominated_row;
          Alcotest.test_case "equality conflict" `Quick test_model_eq_conflict;
          Alcotest.test_case "activity contradiction" `Quick
            test_model_activity_contradiction;
          Alcotest.test_case "redundant row" `Quick test_model_redundant_row;
          Alcotest.test_case "unbounded objective" `Quick test_model_objective_unbounded;
          Alcotest.test_case "possibly unbounded" `Quick
            test_model_objective_possibly_unbounded;
        ] );
      ( "counter-lint",
        [
          Alcotest.test_case "clean reading" `Quick test_counters_clean;
          Alcotest.test_case "negative counter" `Quick test_counters_negative;
          Alcotest.test_case "stalls exceed ccnt" `Quick test_counters_stall_exceeds_ccnt;
          Alcotest.test_case "pm-stall soft vs hard" `Quick
            test_counters_pm_stall_soft_vs_hard;
          Alcotest.test_case "dm-stall bound" `Quick test_counters_dm_stall;
          Alcotest.test_case "window monotonicity" `Quick test_counters_window;
        ] );
      ( "scenario-lint",
        [
          Alcotest.test_case "bundled scenarios clean" `Quick
            test_scenarios_bundled_clean;
          Alcotest.test_case "zero spec contradicted" `Quick
            test_scenario_zero_contradicted;
          Alcotest.test_case "tailoring incomplete" `Quick
            test_scenario_tailoring_incomplete;
          Alcotest.test_case "tailoring inapplicable" `Quick
            test_scenario_tailoring_inapplicable;
        ] );
      ( "program-lint",
        [
          Alcotest.test_case "unmapped address" `Quick test_program_unmapped;
          Alcotest.test_case "code from dfl" `Quick test_program_code_from_dfl;
          Alcotest.test_case "unreachable loop" `Quick test_program_unreachable_loop;
          Alcotest.test_case "cross-core overlap" `Quick test_program_cross_core_overlap;
          Alcotest.test_case "same-core sharing ok" `Quick
            test_program_same_core_sharing_ok;
          Alcotest.test_case "code/data alias overlap" `Quick
            test_program_code_data_overlap;
          Alcotest.test_case "zero-traffic mismatch" `Quick
            test_program_zero_traffic_mismatch;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "all defects detected" `Quick test_fixtures_all_detected;
          Alcotest.test_case "guard raises on errors" `Quick test_preflight_guard;
          Alcotest.test_case "bundled setups pass preflight" `Quick
            test_preflight_bundled_runs;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "sub_exn" `Quick test_sub_exn;
          Alcotest.test_case "scale_div contract" `Quick test_scale_div_contract;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lint_accepts_feasible;
            prop_mutation_duplicate_row;
            prop_mutation_flipped_sense;
          ]
        @ [ Alcotest.test_case "mutation: dropped bound" `Quick
              test_mutation_dropped_bound ] );
    ]
