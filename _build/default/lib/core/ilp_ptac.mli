(** The ILP-PTAC contention model (paper Section 3.5, Eqs. 9–23, tailored
    per deployment scenario as in Table 5).

    The TC27x cannot measure per-target access counts (PTAC), so the model
    searches over {e every} PTAC assignment for both tasks that is
    consistent with the observed stall-cycle and cache-miss counters, and
    maximises the contention the contender can inflict — an integer linear
    program over:
    - [n^{t,o}_a], [n^{t,o}_b]: candidate per-target access counts;
    - [n^{t,o}_{b→a}]: interfering requests, bounded per target by both
      tasks' traffic to that target (Eqs. 10–19) and charged [l^{t,o}]
      cycles each in the objective (Eq. 9).

    Dropping the contender-side consistency constraints (Eqs. 22–23) makes
    the bound fully time-composable again (the paper's remark after
    Eq. 23); keeping them yields the partially time-composable bound that
    adapts to the contender's measured load.

    {b Stall-consistency encoding.} Eqs. 20–23 are stated as equalities
    [Σ_t n^{t,o} · cs^{t,o} = stall^o] with [cs^{t,o}] the {e minimum}
    stall per request. Real readings include requests that stalled longer
    than the minimum, so the literal equality can exclude the true counts
    (and clash with the exact PCACHE_MISS tailoring). The sound reading —
    and this implementation's default, {!Upper} — is
    [Σ_t n^{t,o} · cs^{t,o} <= stall^o + cs^o_{min} - 1], whose per-target
    relaxation reproduces exactly the ceiling bound of Eq. 4 and always
    contains the ground-truth assignment. {!Exact} and {!Window} implement
    the literal readings for comparison (see DESIGN.md). *)

open Platform

type equality_mode =
  | Exact  (** Eqs. 20–23 as literal equalities *)
  | Window  (** [stall <= Σ <= stall + cs_min - 1] *)
  | Upper  (** [Σ <= stall + cs_min - 1] (sound default) *)

type options = {
  equality_mode : equality_mode;
  use_contender_info : bool;
      (** keep Eqs. 22–23; [false] degrades to a fully time-composable
          ILP bound *)
  dirty_lmu : bool;
      (** charge LMU data interference at the dirty-miss latency *)
  tailor_contender : bool;
      (** apply the scenario's Table 5 constraints to the contender too
          (Section 4.1 assumes deployments apply to both tasks) *)
  node_limit : int;
  mip_slack : int;
      (** absolute branch-and-bound pruning slack in cycles: the search may
          stop within [mip_slack] of the ILP optimum, and the reported
          [delta] is compensated upward by the same amount (then capped by
          the LP relaxation), so it always upper-bounds the exact ILP
          value. Set 0 for exact solving. *)
}

val default_options : options
(** [{ equality_mode = Upper; use_contender_info = true; dirty_lmu = false;
      tailor_contender = true; node_limit = 2_000; mip_slack = 16 }] —
    the paper's instances solve within a handful of nodes; the budget only
    exists to trigger the sound LP fallback on adversarial inputs. *)

type result = {
  delta : int;
      (** sound upper bound on Δcont: the Eq. 9 optimum when [exact],
          otherwise optimum + [mip_slack] capped by the LP relaxation, or
          the LP relaxation itself if the node budget ran out *)
  interference : ((Target.t * Op.t) * int) list;  (** [n^{t,o}_{b→a}] *)
  a_counts : Access_profile.t;  (** worst-case consistent PTAC for τa *)
  b_counts : Access_profile.t;  (** worst-case consistent PTAC for τb *)
  exact : bool;
      (** [true] iff [delta] is the exact ILP optimum (requires
          [mip_slack = 0] and the search finishing within [node_limit]) *)
}

val build_model :
  ?options:options ->
  latency:Latency.t ->
  scenario:Scenario.t ->
  a:Counters.t ->
  b:Counters.t ->
  unit ->
  Ilp.Model.t * (string -> Ilp.Model.var)
(** The raw ILP (exposed for inspection and white-box tests). The second
    component resolves variable names: ["na_pf0_co"], ["nb_lmu_da"],
    ["nba_dfl_da"], … *)

val contention_bound :
  ?options:options ->
  latency:Latency.t ->
  scenario:Scenario.t ->
  a:Counters.t ->
  b:Counters.t ->
  unit ->
  result option
(** [None] when the ILP is infeasible (possible under {!Exact}; never under
    {!Upper} with valid counters). Never raises on pathological inputs:
    if branch & bound exhausts [node_limit], the LP-relaxation optimum is
    returned instead (sound, marked [exact = false]). *)

val contention_bound_exn :
  ?options:options ->
  latency:Latency.t ->
  scenario:Scenario.t ->
  a:Counters.t ->
  b:Counters.t ->
  unit ->
  result
(** @raise Failure on infeasibility. *)

val pp_result : Format.formatter -> result -> unit
