(** Multi-contender extension (paper Section 2: "this model can be easily
    extended to consider more contenders at the same time").

    With per-target round-robin arbitration, a request of the task under
    analysis can wait for at most one in-flight request of {e each} other
    master, so worst-case interference is additive over contenders: one
    ILP-PTAC instance per contender, summed. *)

open Platform

type result = {
  delta : int;  (** total Δcont over all contenders *)
  per_contender : Ilp_ptac.result list;  (** in input order *)
}

val contention_bound :
  ?options:Ilp_ptac.options ->
  latency:Latency.t ->
  scenario:Scenario.t ->
  a:Counters.t ->
  contenders:Counters.t list ->
  unit ->
  result option
(** [None] if any per-contender instance is infeasible. *)

val pp : Format.formatter -> result -> unit
