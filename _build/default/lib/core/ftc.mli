(** The fully time-composable (fTC) contention model (paper Section 3.4).

    Uses only the task-under-analysis' cumulative stall counters: every one
    of its [n̂^{co}] code requests is assumed delayed by the longest
    latency any co-runner request could inflict on a code-reachable target
    (Eq. 6), and likewise for data (Eq. 7):

    [Δcont = n̂^{co}_a · l^{co}_{max} + n̂^{da}_a · l^{da}_{max}]   (Eq. 8)

    The bound holds for {e any} contender behaviour — the price is the
    pessimism Figure 4 exhibits. *)

open Platform

type result = {
  delta : int;
  n_co : int;  (** [n̂^{co}_a] *)
  n_da : int;  (** [n̂^{da}_a] *)
  l_co_max : int;  (** Eq. 6 *)
  l_da_max : int;  (** Eq. 7 *)
}

val contention_bound :
  ?dirty:bool ->
  ?exact_code_count:int ->
  latency:Latency.t ->
  a:Counters.t ->
  unit ->
  result
(** [dirty] (default [false]): assume co-runner LMU data requests can carry
    dirty write-backs — the pessimistic assumption the paper calls out for
    Scenario 2. [exact_code_count] is the refined-fTC option of
    Section 4.1: when the deployment makes PCACHE_MISS exact, it replaces
    the stall-derived [n̂^{co}_a] (indirect PTAC information exploitable
    "limitedly to τa"). *)

val pp : Format.formatter -> result -> unit
