(** Priority-protected contention bound — an extension beyond the paper.

    The paper analyses the most stressing SRI configuration: all masters in
    the same priority class, arbitrated round-robin (Section 2). The SRI
    also supports priority classes; when the task under analysis is
    {e alone in the most urgent class}, arbitration is non-preemptive
    priority: each of its requests can be blocked by at most the single
    lower-priority transaction already occupying the target when the
    request arrives — independent of how many contenders run.

    The resulting blocking bound reuses the fTC shape (Eq. 8) but its
    validity differs in both directions:
    - it needs no contender measurements {e and} does not grow with the
      number of contenders (the same-class model must add one fTC/ILP term
      per contender, cf. {!Multi});
    - it only holds under the asymmetric priority deployment, which
      platform integrators must enforce. *)

open Platform

type result = {
  delta : int;
  n_co : int;
  n_da : int;
  blocking_co : int;  (** worst lower-priority occupancy of a code target *)
  blocking_da : int;
}

val contention_bound :
  ?dirty:bool -> latency:Latency.t -> a:Counters.t -> unit -> result
(** Valid for any number of lower-priority contenders. [dirty] considers
    lower-priority LMU fills with folded dirty write-backs. *)

val pp : Format.formatter -> result -> unit
