(** Analysis reports: a self-contained record of one contention-aware WCET
    estimation, suitable for design reviews and certification dossiers.

    Besides the numbers, the report explains {e why} the ILP bound is what
    it is: which model constraints are binding at the optimum — e.g.
    whether the contender's measured load (Eqs. 22–23) or the task's own
    capacity (Eqs. 11–19) limits the interference, the distinction behind
    the paper's Figure 4 discussion. *)

open Platform

val binding_constraints :
  ?options:Ilp_ptac.options ->
  latency:Latency.t ->
  scenario:Scenario.t ->
  a:Counters.t ->
  b:Counters.t ->
  Ilp_ptac.result ->
  (string * string) list
(** Constraints of the (rebuilt) ILP that hold with equality at the
    result's variable assignment, as [(name, "lhs sense rhs")] pairs. *)

val markdown :
  ?options:Ilp_ptac.options ->
  latency:Latency.t ->
  scenario:Scenario.t ->
  a:Counters.t ->
  b:Counters.t ->
  isolation_cycles:int ->
  ?observed_cycles:int ->
  unit ->
  string
(** A complete markdown report: inputs (counters, scenario, tailoring),
    derived access bounds, the fTC and ILP-PTAC estimates, the worst-case
    interference breakdown and the binding constraints. *)
