(** Front-side-bus reduction (paper Section 4.3).

    On an FSB-style platform every shared-memory request serialises on one
    bus, so any contender request can delay any request of the task under
    analysis. The paper observes the FSB model is "a reduced case for the
    more generic cross-bar model": collapse all targets into a single
    interface and the worst-case pairing becomes a greedy matching —
    delay as many of τa's requests as possible with the contender's most
    expensive requests first. *)

open Platform

type result = {
  delta : int;
  paired_data : int;  (** τb data requests charged at [l^{da}_{max}] *)
  paired_code : int;  (** τb code requests charged at [l^{co}_{max}] *)
}

val contention_bound :
  ?dirty:bool ->
  latency:Latency.t ->
  a:Counters.t ->
  b:Counters.t ->
  unit ->
  result
(** Both tasks' request totals come from their stall readings (Eq. 4). *)

val pp : Format.formatter -> result -> unit
