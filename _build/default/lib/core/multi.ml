type result = { delta : int; per_contender : Ilp_ptac.result list }

let contention_bound ?options ~latency ~scenario ~a ~contenders () =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | b :: rest ->
      (match Ilp_ptac.contention_bound ?options ~latency ~scenario ~a ~b () with
       | Some r -> go (r :: acc) rest
       | None -> None)
  in
  match go [] contenders with
  | None -> None
  | Some per_contender ->
    Some
      {
        delta = List.fold_left (fun acc r -> acc + r.Ilp_ptac.delta) 0 per_contender;
        per_contender;
      }

let pp fmt r =
  Format.fprintf fmt "@[<v>multi-contender: delta=%d@," r.delta;
  List.iteri
    (fun i c -> Format.fprintf fmt "  contender %d: %d@," i c.Ilp_ptac.delta)
    r.per_contender;
  Format.fprintf fmt "@]"
