open Platform
open Numeric

let value_of_result (r : Ilp_ptac.result) model =
  (* Map model variables back to the result's counts via their names. *)
  let value_by_name = Hashtbl.create 32 in
  List.iter
    (fun (t, o) ->
       let set role count =
         Hashtbl.replace value_by_name
           (Printf.sprintf "n%s_%s_%s" role (Target.to_string t) (Op.to_string o))
           (Q.of_int count)
       in
       set "a" (Access_profile.get r.Ilp_ptac.a_counts t o);
       set "b" (Access_profile.get r.Ilp_ptac.b_counts t o);
       set "ba"
         (try List.assoc (t, o) r.Ilp_ptac.interference with Not_found -> 0))
    Op.valid_pairs;
  fun v ->
    match Hashtbl.find_opt value_by_name (Ilp.Model.var_name model v) with
    | Some q -> q
    | None -> Q.zero

let binding_constraints ?options ~latency ~scenario ~a ~b result =
  let model, _ = Ilp_ptac.build_model ?options ~latency ~scenario ~a ~b () in
  let value = value_of_result result model in
  List.filter_map
    (fun (c : Ilp.Model.constr) ->
       let lhs = Ilp.Linexpr.eval c.Ilp.Model.expr value in
       let tight =
         match c.Ilp.Model.csense with
         | Ilp.Model.Eq -> true
         | Ilp.Model.Le | Ilp.Model.Ge -> Q.equal lhs c.Ilp.Model.rhs
       in
       (* rows whose variables are all zero are vacuously tight *)
       let informative =
         List.exists
           (fun (v, _) -> not (Q.is_zero (value v)))
           (Ilp.Linexpr.terms c.Ilp.Model.expr)
       in
       if tight && informative then
         Some
           ( c.Ilp.Model.cname,
             Format.asprintf "%a %s %s"
               (Ilp.Linexpr.pp ~names:(Ilp.Model.var_name model))
               c.Ilp.Model.expr
               (match c.Ilp.Model.csense with
                | Ilp.Model.Le -> "<="
                | Ilp.Model.Ge -> ">="
                | Ilp.Model.Eq -> "=")
               (Q.to_string c.Ilp.Model.rhs) )
       else None)
    (Ilp.Model.constraints model)

let markdown ?options ~latency ~scenario ~a ~b ~isolation_cycles ?observed_cycles () =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# Contention-aware WCET report";
  line "";
  line "## Inputs";
  line "";
  line "- deployment scenario: `%s` (%s)" scenario.Scenario.name
    scenario.Scenario.description;
  line "- isolation execution time: %d cycles" isolation_cycles;
  line "";
  line "| counter | task a | contender b |";
  line "|---|---|---|";
  line "| PMEM_STALL | %d | %d |" a.Counters.pmem_stall b.Counters.pmem_stall;
  line "| DMEM_STALL | %d | %d |" a.Counters.dmem_stall b.Counters.dmem_stall;
  line "| PCACHE_MISS | %d | %d |" a.Counters.pcache_miss b.Counters.pcache_miss;
  line "| D$_MISS_CLEAN | %d | %d |" a.Counters.dcache_miss_clean
    b.Counters.dcache_miss_clean;
  line "| D$_MISS_DIRTY | %d | %d |" a.Counters.dcache_miss_dirty
    b.Counters.dcache_miss_dirty;
  line "";
  line "## Derived access bounds (Eq. 4)";
  line "";
  let ba = Mbta.Access_bounds.of_counters latency a in
  let bb = Mbta.Access_bounds.of_counters latency b in
  line "- task a: n_co <= %d, n_da <= %d" ba.Mbta.Access_bounds.n_co
    ba.Mbta.Access_bounds.n_da;
  line "- contender b: n_co <= %d, n_da <= %d" bb.Mbta.Access_bounds.n_co
    bb.Mbta.Access_bounds.n_da;
  line "";
  line "## Bounds";
  line "";
  let is_s2 = scenario.Scenario.name = "scenario2" in
  let ftc = Ftc.contention_bound ~dirty:is_s2 ~latency ~a () in
  let wcet delta = isolation_cycles + delta in
  line "### fTC (fully time-composable, Eq. 8)";
  line "";
  line "- delta = %d cycles = %d x %d + %d x %d" ftc.Ftc.delta ftc.Ftc.n_co
    ftc.Ftc.l_co_max ftc.Ftc.n_da ftc.Ftc.l_da_max;
  line "- WCET = %d cycles (x%.2f over isolation)" (wcet ftc.Ftc.delta)
    (float_of_int (wcet ftc.Ftc.delta) /. float_of_int isolation_cycles);
  line "";
  line "### ILP-PTAC (Eqs. 9-23, Table 5 tailoring)";
  line "";
  (match Ilp_ptac.contention_bound ?options ~latency ~scenario ~a ~b () with
   | None -> line "- infeasible under the selected stall-equality encoding"
   | Some r ->
     line "- delta = %d cycles%s" r.Ilp_ptac.delta
       (if r.Ilp_ptac.exact then " (exact optimum)" else " (sound upper bound)");
     line "- WCET = %d cycles (x%.2f over isolation)" (wcet r.Ilp_ptac.delta)
       (float_of_int (wcet r.Ilp_ptac.delta) /. float_of_int isolation_cycles);
     line "";
     line "worst-case interference mapping (n_b->a per target/op):";
     line "";
     line "| target | op | conflicts | latency each |";
     line "|---|---|---|---|";
     List.iter
       (fun ((t, o), n) ->
          if n > 0 then
            line "| %s | %s | %d | %d |" (Target.to_string t) (Op.to_string o) n
              (Latency.lmax_op latency t o))
       r.Ilp_ptac.interference;
     line "";
     line "binding constraints at the optimum:";
     line "";
     List.iter
       (fun (name, eqn) -> line "- `%s`: %s" name eqn)
       (binding_constraints ?options ~latency ~scenario ~a ~b r));
  (match observed_cycles with
   | None -> ()
   | Some obs ->
     line "";
     line "## Validation";
     line "";
     line "- observed multicore execution: %d cycles (x%.2f)" obs
       (float_of_int obs /. float_of_int isolation_cycles));
  Buffer.contents buf
