open Platform

type result = { delta : int; paired_data : int; paired_code : int }

let contention_bound ?(dirty = false) ~latency ~a ~b () =
  let ba = Mbta.Access_bounds.of_counters latency a in
  let bb = Mbta.Access_bounds.of_counters latency b in
  let n_a = ba.Mbta.Access_bounds.n_co + ba.Mbta.Access_bounds.n_da in
  let l_da = Latency.worst_latency ~dirty latency Op.Data in
  let l_co = Latency.worst_latency ~dirty latency Op.Code in
  (* greedy: expensive (data) contender requests first *)
  let paired_data = min bb.Mbta.Access_bounds.n_da n_a in
  let paired_code = min bb.Mbta.Access_bounds.n_co (n_a - paired_data) in
  { delta = (paired_data * l_da) + (paired_code * l_co); paired_data; paired_code }

let pp fmt r =
  Format.fprintf fmt "FSB: delta=%d (%d data + %d code pairings)" r.delta
    r.paired_data r.paired_code
