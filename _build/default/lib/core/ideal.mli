(** The ideal contention model (paper Eq. 1).

    Assumes full knowledge of both tasks' per-target access counts: each
    request of the contender delays one same-type request of the task
    under analysis to the same target for the target's worst latency:

    [Δcont = Σ_t Σ_o min(n^{t,o}_a, n^{t,o}_b) · l^{t,o}]

    Not obtainable from the TC27x DSU (no per-target counters); it serves
    as the information-rich reference the realistic models approximate. *)

open Platform

val contention_bound :
  ?dirty:bool ->
  latency:Latency.t ->
  a:Access_profile.t ->
  b:Access_profile.t ->
  unit ->
  int
(** [dirty] (default [false]) uses the LMU dirty-miss latency for LMU data
    delays. *)

val per_pair :
  ?dirty:bool ->
  latency:Latency.t ->
  a:Access_profile.t ->
  b:Access_profile.t ->
  unit ->
  ((Target.t * Op.t) * int) list
(** The per-(target, op) contribution breakdown of the bound. *)
