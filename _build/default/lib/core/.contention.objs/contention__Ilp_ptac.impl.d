lib/core/ilp_ptac.ml: Access_profile Array Counters Format Hashtbl Ilp Latency List Numeric Op Platform Printf Q Scenario Target
