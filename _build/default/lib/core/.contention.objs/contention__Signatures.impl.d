lib/core/signatures.ml: Counters Format Ilp_ptac List Platform Printf Scenario
