lib/core/report.mli: Counters Ilp_ptac Latency Platform Scenario
