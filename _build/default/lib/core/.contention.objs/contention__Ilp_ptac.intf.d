lib/core/ilp_ptac.mli: Access_profile Counters Format Ilp Latency Op Platform Scenario Target
