lib/core/signatures.mli: Counters Format Ilp_ptac Latency Platform Scenario
