lib/core/report.ml: Access_profile Buffer Counters Format Ftc Hashtbl Ilp Ilp_ptac Latency List Mbta Numeric Op Platform Printf Q Scenario Target
