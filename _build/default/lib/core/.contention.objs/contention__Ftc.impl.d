lib/core/ftc.ml: Format Latency Mbta Op Platform
