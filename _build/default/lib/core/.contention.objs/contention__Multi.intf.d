lib/core/multi.mli: Counters Format Ilp_ptac Latency Platform Scenario
