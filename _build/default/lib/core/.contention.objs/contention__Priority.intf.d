lib/core/priority.mli: Counters Format Latency Platform
