lib/core/ftc.mli: Counters Format Latency Platform
