lib/core/fsb.mli: Counters Format Latency Platform
