lib/core/fsb.ml: Format Latency Mbta Op Platform
