lib/core/priority.ml: Format Latency Mbta Op Platform
