lib/core/ideal.mli: Access_profile Latency Op Platform Target
