lib/core/multi.ml: Format Ilp_ptac List
