lib/core/ideal.ml: Access_profile Latency List Op Platform
