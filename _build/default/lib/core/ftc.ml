open Platform

type result = {
  delta : int;
  n_co : int;
  n_da : int;
  l_co_max : int;
  l_da_max : int;
}

let contention_bound ?(dirty = false) ?exact_code_count ~latency ~a () =
  let bounds = Mbta.Access_bounds.of_counters latency a in
  let n_co =
    match exact_code_count with
    | Some n ->
      if n < 0 then invalid_arg "Ftc.contention_bound: negative code count";
      n
    | None -> bounds.Mbta.Access_bounds.n_co
  in
  let n_da = bounds.Mbta.Access_bounds.n_da in
  let l_co_max = Latency.worst_latency ~dirty latency Op.Code in
  let l_da_max = Latency.worst_latency ~dirty latency Op.Data in
  { delta = (n_co * l_co_max) + (n_da * l_da_max); n_co; n_da; l_co_max; l_da_max }

let pp fmt r =
  Format.fprintf fmt "fTC: delta=%d (n_co=%d x %d + n_da=%d x %d)" r.delta
    r.n_co r.l_co_max r.n_da r.l_da_max
