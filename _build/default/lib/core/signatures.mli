(** Resource-usage templates and signatures (the concept of the paper's
    reference [10], which its microbenchmarks and partial
    time-composability build on).

    Pre-integration, the actual co-runners are unknown, but bounds can be
    precomputed against a ladder of {e templates} — synthetic contender
    counter envelopes of increasing load. At integration time each real
    contender is classified by the smallest template that dominates its
    measured {e signature} (its counter readings), and the precomputed
    bound applies.

    Soundness rests on monotonicity: enlarging the contender's counters
    only enlarges the ILP's feasible interference, so a dominating
    template's bound covers every contender it classifies. *)

open Platform

type template = { label : string; counters : Counters.t }

type entry = { template : template; delta : int }

type t = {
  scenario : Scenario.t;
  entries : entry list;  (** increasing load order *)
}

val grid : steps:int -> max:Counters.t -> template list
(** [steps] templates scaling [max] linearly from [max/steps] up to [max]
    (each counter scaled independently, rounding up so every template
    dominates its predecessor).
    @raise Invalid_argument if [steps < 1]. *)

val precompute :
  ?options:Ilp_ptac.options ->
  latency:Latency.t ->
  scenario:Scenario.t ->
  a:Counters.t ->
  templates:template list ->
  unit ->
  t
(** One ILP-PTAC bound per template.
    @raise Failure if a template's model is infeasible. *)

val dominates : Counters.t -> Counters.t -> bool
(** Pointwise (stall and miss counters; [ccnt] is ignored — it is an
    outcome, not a load signature). *)

val classify : t -> Counters.t -> entry option
(** The first (smallest) entry whose template dominates the signature;
    [None] when the contender exceeds every template (no precomputed
    budget applies — the integrator must renegotiate). *)

val pp : Format.formatter -> t -> unit
