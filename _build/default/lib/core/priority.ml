open Platform

type result = {
  delta : int;
  n_co : int;
  n_da : int;
  blocking_co : int;
  blocking_da : int;
}

let contention_bound ?(dirty = false) ~latency ~a () =
  let bounds = Mbta.Access_bounds.of_counters latency a in
  let n_co = bounds.Mbta.Access_bounds.n_co in
  let n_da = bounds.Mbta.Access_bounds.n_da in
  (* Non-preemptive blocking: at most one in-service lower-priority
     transaction per request, bounded by the worst occupancy of any target
     the request can need — the same per-request delay fTC assumes. *)
  let blocking_co = Latency.worst_latency ~dirty latency Op.Code in
  let blocking_da = Latency.worst_latency ~dirty latency Op.Data in
  { delta = (n_co * blocking_co) + (n_da * blocking_da); n_co; n_da; blocking_co; blocking_da }

let pp fmt r =
  Format.fprintf fmt
    "priority blocking bound: delta=%d (n_co=%d x %d + n_da=%d x %d), any number of contenders"
    r.delta r.n_co r.blocking_co r.n_da r.blocking_da
