open Platform

let per_pair ?(dirty = false) ~latency ~a ~b () =
  List.map
    (fun (t, o) ->
       let n = min (Access_profile.get a t o) (Access_profile.get b t o) in
       ((t, o), n * Latency.lmax_op ~dirty latency t o))
    Op.valid_pairs

let contention_bound ?dirty ~latency ~a ~b () =
  List.fold_left (fun acc (_, d) -> acc + d) 0 (per_pair ?dirty ~latency ~a ~b ())
