(** Calibration microbenchmarks (paper Section 3.3, citing [10]):
    programs issuing a known number of SRI requests of a chosen type to a
    chosen target, used to measure the Table 2 latency and stall constants
    on the platform.

    Two families:
    - {!repeated}: [n] streaming requests — dividing the observed stall
      delta by [n] yields the best-case stall per request [cs^{t,o}];
    - {!single_probe}: exactly one cold request plus a matched baseline —
      the cycle delta is the maximum end-to-end latency [lmax^{t,o}]. *)

open Platform

val repeated :
  target:Target.t ->
  op:Op.t ->
  n:int ->
  ?cacheable:bool ->
  ?region_offset:int ->
  unit ->
  Tcsim.Program.t
(** A program performing exactly [n] SRI requests of type [op] to [target],
    laid out to stream (sequential lines) so per-request stalls bottom out
    at the calibration floor. [cacheable] (default: [true] for code — the
    only mode both paper scenarios use — and [false] for data) selects the
    address window; with a cacheable window the request count is still
    exact because every line is touched once per pass and passes thrash the
    cache. [region_offset] displaces the address window (to keep concurrent
    tasks' lines distinct).
    @raise Invalid_argument for (dfl, code) or cacheable dfl. *)

val single_probe :
  target:Target.t ->
  op:Op.t ->
  ?cacheable:bool ->
  unit ->
  Tcsim.Program.t * Tcsim.Program.t
(** [(probe, baseline)]: identical programs except the probe performs one
    cold SRI request where the baseline performs a core-local one. The
    isolation cycle difference is exactly [lmax^{t,o}]. *)

val streaming_pair_probe :
  target:Target.t -> op:Op.t -> unit -> Tcsim.Program.t * Tcsim.Program.t
(** [(probe, baseline)] whose cycle delta is the {e streaming} latency
    [lmin^{t,o}]: the probe's measured request reuses the line of an
    immediately preceding warm-up request. *)
