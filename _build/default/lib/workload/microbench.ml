open Platform
open Tcsim

let pspr = Memory_map.pspr_base
let dspr = Memory_map.dspr_base
let line = Memory_map.line_bytes

let check_valid target op =
  if not (Op.valid target op) then
    invalid_arg
      (Printf.sprintf "Microbench: inadmissible (%s, %s)"
         (Target.to_string target) (Op.to_string op))

let default_cacheable target op =
  match (op, target) with
  | Op.Code, _ -> true
  | Op.Data, _ -> false

let window target ~cacheable ~region_offset =
  let base = Memory_map.base_of target ~cacheable in
  let size = Memory_map.size_of target in
  let offset = region_offset land lnot (line - 1) in
  if offset < 0 || offset >= size then
    invalid_arg "Microbench: region_offset outside the target window";
  (base + offset, size - offset)

let repeated ~target ~op ~n ?cacheable ?(region_offset = 0) () =
  check_valid target op;
  if n < 0 then invalid_arg "Microbench.repeated: negative count";
  let cacheable =
    match cacheable with Some c -> c | None -> default_cacheable target op
  in
  if cacheable && Target.equal target Target.Dfl then
    invalid_arg "Microbench.repeated: data flash is never cacheable";
  let base, avail = window target ~cacheable ~region_offset in
  let nlines = avail / line in
  let addr i = base + (i mod nlines * line) in
  let name =
    Printf.sprintf "ub_%s_%s_%d" (Target.to_string target) (Op.to_string op) n
  in
  match op with
  | Op.Data ->
    (* n loads at line stride: every access is a distinct-line SRI request
       (non-cacheable window, or cacheable with a thrashing footprint). *)
    let kinds = List.init n (fun i -> Program.Load (addr i)) in
    Program.make ~name (Program.seq ~pc_base:pspr kinds)
  | Op.Code ->
    (* n one-cycle instructions, one per flash/SRAM line: each fetch is an
       I$ miss served sequentially (streaming on flash). *)
    let items =
      List.init n (fun i -> Program.I { Program.pc = addr i; kind = Program.Compute 1 })
    in
    Program.make ~name items

let single_probe ~target ~op ?cacheable () =
  check_valid target op;
  let cacheable =
    match cacheable with Some c -> c | None -> default_cacheable target op
  in
  let base, _ = window target ~cacheable ~region_offset:0 in
  let warmup = Program.seq ~pc_base:pspr [ Program.Compute 5 ] in
  let tname = Target.to_string target and oname = Op.to_string op in
  match op with
  | Op.Data ->
    let probe =
      Program.make
        ~name:(Printf.sprintf "probe_%s_%s" tname oname)
        (warmup @ [ Program.I { Program.pc = pspr + 64; kind = Program.Load base } ])
    in
    let baseline =
      Program.make
        ~name:(Printf.sprintf "probe_base_%s_%s" tname oname)
        (warmup @ [ Program.I { Program.pc = pspr + 64; kind = Program.Load dspr } ])
    in
    (probe, baseline)
  | Op.Code ->
    let probe =
      Program.make
        ~name:(Printf.sprintf "probe_%s_%s" tname oname)
        (warmup @ [ Program.I { Program.pc = base; kind = Program.Compute 1 } ])
    in
    let baseline =
      Program.make
        ~name:(Printf.sprintf "probe_base_%s_%s" tname oname)
        (warmup @ [ Program.I { Program.pc = pspr + 64; kind = Program.Compute 1 } ])
    in
    (probe, baseline)

let streaming_pair_probe ~target ~op () =
  check_valid target op;
  let cacheable = default_cacheable target op in
  let base, _ = window target ~cacheable ~region_offset:0 in
  let tname = Target.to_string target and oname = Op.to_string op in
  match op with
  | Op.Data ->
    (* warm the line buffer with one access, then measure a same-line
       access *)
    let common = Program.seq ~pc_base:pspr [ Program.Compute 5; Program.Load base ] in
    let probe =
      Program.make
        ~name:(Printf.sprintf "stream_%s_%s" tname oname)
        (common @ [ Program.I { Program.pc = pspr + 64; kind = Program.Load (base + 4) } ])
    in
    let baseline =
      Program.make
        ~name:(Printf.sprintf "stream_base_%s_%s" tname oname)
        (common @ [ Program.I { Program.pc = pspr + 64; kind = Program.Load dspr } ])
    in
    (probe, baseline)
  | Op.Code ->
    (* warm with the first line, measure the sequential next-line fetch *)
    let common =
      Program.seq ~pc_base:pspr [ Program.Compute 5 ]
      @ [ Program.I { Program.pc = base; kind = Program.Compute 1 } ]
    in
    let probe =
      Program.make
        ~name:(Printf.sprintf "stream_%s_%s" tname oname)
        (common @ [ Program.I { Program.pc = base + line; kind = Program.Compute 1 } ])
    in
    let baseline =
      Program.make
        ~name:(Printf.sprintf "stream_base_%s_%s" tname oname)
        (common @ [ Program.I { Program.pc = pspr + 64; kind = Program.Compute 1 } ])
    in
    (probe, baseline)
