open Platform
open Tcsim

type schedule = {
  bursts : int;
  words_per_burst : int;
  src : Target.t;
  dst : Target.t;
  gap_cycles : int;
  region_offset : int;
}

let default_schedule =
  {
    bursts = 200;
    words_per_burst = 8;
    src = Target.Dfl;
    dst = Target.Lmu;
    gap_cycles = 2_000;
    region_offset = 0;
  }

let check s =
  if s.bursts < 0 || s.words_per_burst <= 0 || s.gap_cycles < 0 then
    invalid_arg "Dma: malformed schedule";
  if not (Op.valid s.src Op.Data && Op.valid s.dst Op.Data) then
    invalid_arg "Dma: src/dst must carry data traffic";
  match s.dst with
  | Target.Pf0 | Target.Pf1 -> invalid_arg "Dma: cannot write program flash"
  | Target.Dfl | Target.Lmu -> ()

let addr_of target off =
  (* non-cacheable windows: a DMA master bypasses the caches *)
  Memory_map.base_of target ~cacheable:false + off

let program ?(schedule = default_schedule) () =
  check schedule;
  let s = schedule in
  let pspr = Memory_map.pspr_base in
  let line = Memory_map.line_bytes in
  let burst =
    List.concat
      (List.init s.words_per_burst (fun i ->
           (* distinct lines per word: every access is an SRI request even
              if the schedule is later run on a cached master *)
           let off = s.region_offset + (i * line) in
           [
             Program.I { Program.pc = pspr; kind = Program.Load (addr_of s.src off) };
             Program.I { Program.pc = pspr + 4; kind = Program.Store (addr_of s.dst off) };
           ]))
    @
    if s.gap_cycles > 0 then
      [ Program.I { Program.pc = pspr + 8; kind = Program.Compute s.gap_cycles } ]
    else []
  in
  Program.make ~name:"dma" [ Program.loop s.bursts burst ]

let access_profile s =
  check s;
  let per_burst =
    Access_profile.make
      [ ((s.src, Op.Data), s.words_per_burst); ((s.dst, Op.Data), s.words_per_burst) ]
  in
  Access_profile.scale s.bursts per_burst

let synthesized_counters latency s =
  let profile = access_profile s in
  let dmem_stall = Access_profile.stall_cycles latency profile Op.Data in
  {
    Counters.ccnt = dmem_stall + (s.bursts * s.gap_cycles);
    pmem_stall = 0;
    dmem_stall;
    pcache_miss = 0;
    dcache_miss_clean = 0;
    dcache_miss_dirty = 0;
  }
