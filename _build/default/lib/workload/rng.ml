(* The 48-bit java.util.Random LCG; ample quality for address shuffling. *)

let mask48 = (1 lsl 48) - 1

type t = { mutable state : int }

let create ~seed = { state = (seed lxor 0x5DEECE66D) land mask48 }

let next t =
  t.state <- ((t.state * 0x5DEECE66D) + 0xB) land mask48;
  t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (next t lsr 17) mod bound

let bool t = next t land 0x10000 <> 0

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))
