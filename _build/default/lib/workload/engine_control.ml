open Tcsim

type params = {
  frames : int;
  io_words : int;
  calib_lookups : int;
  resident_code_lines : int;
  frame_compute : int;
  lmu_region : int;
  pf_region : int;
  seed : int;
}

let default_params =
  {
    frames = 50;
    io_words = 48;
    calib_lookups = 24;
    (* 384 lines = 12 KiB: fits the 16 KiB I-cache, so after the first
       frame only the calibration lookups and I/O reach the SRI *)
    resident_code_lines = 384;
    frame_compute = 14_000;
    lmu_region = 0;
    pf_region = 0x100000 - 0x40000; (* away from the stress benchmarks *)
    seed = 7;
  }

let line = Memory_map.line_bytes
let pspr = Memory_map.pspr_base

let task ?(params = default_params) () =
  let p = params in
  if p.pf_region + ((p.resident_code_lines + p.calib_lookups * 8) * line)
     > Memory_map.pf_bank_size
  then invalid_arg "Engine_control: flash window overflow";
  let rng = Rng.create ~seed:p.seed in
  let lmu_nc off = Memory_map.lmu_uncached_base + p.lmu_region + off in
  let pf_code i = Memory_map.pf0_cached_base + p.pf_region + (i * line) in
  let pf_calib i =
    Memory_map.pf1_cached_base + p.pf_region + ((p.resident_code_lines + i) * line)
  in
  let acquisition =
    List.init p.io_words (fun i ->
        Program.I { Program.pc = pspr + (4 * i); kind = Program.Load (lmu_nc (4 * i)) })
  in
  let resident_code =
    List.init p.resident_code_lines (fun i ->
        Program.I { Program.pc = pf_code i; kind = Program.Compute 2 })
  in
  let calibration =
    List.init p.calib_lookups (fun i ->
        Program.I
          {
            Program.pc = pspr + 0x400 + (4 * i);
            (* a sparse, data-dependent table: most lookups miss the D$ *)
            kind = Program.Load (pf_calib (Rng.int rng 64 * 8 mod 512));
          })
  in
  let publication =
    List.init p.io_words (fun i ->
        Program.I
          { Program.pc = pspr + 0x800 + (4 * i); kind = Program.Store (lmu_nc (1024 + (4 * i))) })
  in
  let crunch =
    let chunk = 1 + (p.frame_compute / 2) in
    [
      Program.I { Program.pc = pspr + 0xC00; kind = Program.Compute chunk };
      Program.I { Program.pc = pspr + 0xC04; kind = Program.Compute chunk };
    ]
  in
  let frame = acquisition @ resident_code @ calibration @ crunch @ publication in
  Program.make ~name:"engine_control" [ Program.loop p.frames frame ]
