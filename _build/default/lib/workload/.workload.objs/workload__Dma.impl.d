lib/workload/dma.ml: Access_profile Counters List Memory_map Op Platform Program Target Tcsim
