lib/workload/rng.mli:
