lib/workload/engine_control.mli: Tcsim
