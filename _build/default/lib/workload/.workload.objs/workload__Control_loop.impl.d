lib/workload/control_loop.ml: Array Format List Memory_map Platform Printf Program Rng Scenario Tcsim
