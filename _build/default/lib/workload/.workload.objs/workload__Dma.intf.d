lib/workload/dma.mli: Access_profile Counters Latency Platform Target Tcsim
