lib/workload/load_gen.mli: Control_loop Tcsim
