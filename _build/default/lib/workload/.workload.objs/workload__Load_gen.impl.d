lib/workload/load_gen.ml: Control_loop
