lib/workload/microbench.ml: List Memory_map Op Platform Printf Program Target Tcsim
