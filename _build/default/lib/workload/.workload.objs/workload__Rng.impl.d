lib/workload/rng.ml: List
