lib/workload/control_loop.mli: Format Platform Tcsim
