lib/workload/microbench.mli: Op Platform Target Tcsim
