lib/workload/engine_control.ml: List Memory_map Program Rng Tcsim
