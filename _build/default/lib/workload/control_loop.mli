(** The evaluation workload of the paper (Section 4.2): an application
    mimicking an automotive cruise-control loop — per period it acquires
    input signals, runs a computation over two medium-size data structures
    and publishes a status update — plus the co-runner benchmarks derived
    from the same deployment.

    Each program is generated for one of the two deployment variants of
    Figure 3:
    - {!S1}: code in scratchpad + cacheable pf0/pf1, shared data
      non-cacheable in the LMU;
    - {!S2}: code in scratchpad + cacheable pf0/pf1, data in the LMU (both
      cacheable and non-cacheable) and cacheable constants in pf0/pf1. *)

type variant = S1 | S2

type params = {
  iterations : int;  (** control periods *)
  signal_words : int;  (** per-period sensor words read from LMU (n$) *)
  state_words : int;  (** per-period status words written to LMU (n$) *)
  table_walk : int;  (** per-period accesses over the shared tables *)
  code_lines : int;  (** compute-code lines (32 B each) split over pf0/pf1 *)
  compute_per_line : int;  (** execution cycles per compute-code line *)
  local_compute : int;  (** per-period scratchpad-only compute cycles *)
  cache_data_lines : int;  (** S2: cacheable LMU working-set lines *)
  const_lines : int;  (** S2: cacheable constant lines in pf0/pf1 *)
  lmu_region : int;  (** byte offset of this task's LMU window *)
  pf_region : int;  (** byte offset of this task's code in each pf bank *)
  seed : int;
}

val default_params : params
(** Tuned so that, in isolation, stalls are a realistic fraction of
    execution time and Scenario-2 cacheable working sets fit the data cache
    (cold misses only — the paper's DMD = 0, small DMC signature). *)

val build : variant -> params -> Tcsim.Program.t
(** Generator shared by the application and the co-runners.
    @raise Invalid_argument if the memory windows overflow their target
    (e.g. LMU footprint beyond 32 KiB). *)

val app : variant -> Tcsim.Program.t
(** The application under analysis, [default_params], task windows at
    offset 0. *)

val app_input_variants : variant -> n:int -> Tcsim.Program.t list
(** [n] builds of the application whose data-dependent access patterns
    differ (distinct generator seeds) — the input sweep an MBTA campaign
    measures before taking the high-water mark.
    @raise Invalid_argument if [n < 1]. *)

val variant_of_scenario : Platform.Scenario.t -> variant
(** Maps [scenario1]/[scenario2] (and [unrestricted], treated as S1).*)

val pp_params : Format.formatter -> params -> unit
