(** Deterministic pseudo-random numbers for workload generation.

    A self-contained LCG keeps generated programs bit-identical across runs
    and independent of any global [Random] state. *)

type t

val create : seed:int -> t
val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)
