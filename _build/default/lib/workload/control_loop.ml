open Platform
open Tcsim

type variant = S1 | S2

type params = {
  iterations : int;
  signal_words : int;
  state_words : int;
  table_walk : int;
  code_lines : int;
  compute_per_line : int;
  local_compute : int;
  cache_data_lines : int;
  const_lines : int;
  lmu_region : int;
  pf_region : int;
  seed : int;
}

let default_params =
  {
    iterations = 40;
    signal_words = 48;
    state_words = 48;
    table_walk = 320;
    code_lines = 768;
    compute_per_line = 2;
    local_compute = 20_000;
    cache_data_lines = 128;
    const_lines = 64;
    lmu_region = 0;
    pf_region = 0x8000;
    seed = 42;
  }

let line = Memory_map.line_bytes
let pspr = Memory_map.pspr_base
let dspr = Memory_map.dspr_base

(* Task-local LMU window layout (all offsets within [lmu_region,
   lmu_region + 10 KiB) — three task windows fit the 32 KiB LMU, one per
   core):
     [0, 2K)   non-cacheable signals + state
     [2K, 6K)  non-cacheable shared tables (two 2 KiB structures)
     [6K, 10K) cacheable working set (S2 only)                        *)
let nq_io_off = 0
let nq_tables_off = 2 * 1024
let nq_tables_size = 4 * 1024
let c_data_off = 6 * 1024
let lmu_window = 10 * 1024

let check_fits p =
  if p.lmu_region < 0 || p.lmu_region + lmu_window > Memory_map.lmu_size then
    invalid_arg "Control_loop: LMU window exceeds the 32 KiB LMU";
  if p.cache_data_lines * line > 4 * 1024 then
    invalid_arg "Control_loop: cacheable working set beyond its 4 KiB slot";
  let bank_lines = (p.code_lines + 1) / 2 in
  let code_bytes = (bank_lines * line) + (p.const_lines * line) in
  if p.pf_region + code_bytes > Memory_map.pf_bank_size then
    invalid_arg "Control_loop: code window exceeds the pf bank"

let build variant p =
  check_fits p;
  let rng = Rng.create ~seed:p.seed in
  let lmu_nc off = Memory_map.lmu_uncached_base + p.lmu_region + off in
  let lmu_c off = Memory_map.lmu_cached_base + p.lmu_region + off in
  let pf_code bank i =
    (if bank = 0 then Memory_map.pf0_cached_base else Memory_map.pf1_cached_base)
    + p.pf_region + (i * line)
  in
  let bank_lines = (p.code_lines + 1) / 2 in
  (* The pf1 constant block is displaced by half the constant footprint so
     pf0 and pf1 constants occupy disjoint D$ sets (with the cacheable LMU
     working set in the other way, every set holds at most two live lines:
     cold misses only, the paper's small-DMC / zero-DMD signature). *)
  let pf_const bank i =
    (if bank = 0 then Memory_map.pf0_cached_base else Memory_map.pf1_cached_base)
    + p.pf_region + (bank_lines * line)
    + (bank * (p.const_lines / 2) * line)
    + (i * line)
  in
  (* --- acquisition: copy sensor words into local state (PSPR code) --- *)
  let acquisition =
    List.concat
      (List.init p.signal_words (fun i ->
           [
             Program.I
               { Program.pc = pspr + (8 * i); kind = Program.Load (lmu_nc (nq_io_off + (4 * i))) };
             Program.I
               { Program.pc = pspr + (8 * i) + 4; kind = Program.Store (dspr + (4 * i)) };
           ]))
  in
  (* --- compute: code fetched from pf0/pf1, one line per instruction ---
     Control-flow in real applications is branchy, so successive misses
     rarely hit the flash prefetch buffer: shuffling the line order makes
     the per-miss stall sit near the non-streaming latency, reproducing
     the paper's Table 6 signature of PS >> 6 x PM. *)
  let compute_code =
    let lines =
      Array.of_list
        (List.concat_map
           (fun bank -> List.init bank_lines (fun i -> pf_code bank i))
           [ 0; 1 ])
    in
    for i = Array.length lines - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let tmp = lines.(i) in
      lines.(i) <- lines.(j);
      lines.(j) <- tmp
    done;
    Array.to_list
      (Array.map
         (fun pc -> Program.I { Program.pc; kind = Program.Compute p.compute_per_line })
         lines)
  in
  (* --- table walks: data traffic over the two shared structures --- *)
  let table_access i =
    match variant with
    | S1 ->
      (* both structures non-cacheable in the LMU *)
      let off = nq_tables_off + (Rng.int rng (nq_tables_size / 4) * 4) in
      if i mod 4 = 3 then Program.Store (lmu_nc off) else Program.Load (lmu_nc off)
    | S2 ->
      (* spread over: cacheable LMU working set, cacheable pf constants,
         and a small residue of non-cacheable LMU I/O *)
      (match i mod 8 with
       | 0 | 1 | 2 | 3 ->
         Program.Load (lmu_c (c_data_off + (Rng.int rng p.cache_data_lines * line)))
       | 4 | 5 ->
         Program.Load (pf_const (i mod 2) (Rng.int rng (max 1 (p.const_lines / 2))))
       | 6 -> Program.Load (lmu_nc (nq_io_off + (Rng.int rng 256 * 4)))
       | _ -> Program.Store (lmu_nc (nq_io_off + 1024 + (Rng.int rng 128 * 4))))
  in
  let table_walks =
    List.init p.table_walk (fun i ->
        Program.I { Program.pc = pspr + 0x1000 + (4 * (i mod 512)); kind = table_access i })
  in
  (* --- status update: publish state words (PSPR code) --- *)
  let update =
    List.init p.state_words (fun i ->
        Program.I
          {
            Program.pc = pspr + 0x2000 + (4 * i);
            kind = Program.Store (lmu_nc (nq_io_off + 1024 + (4 * i)));
          })
  in
  (* --- local number crunching (PSPR code, no SRI traffic) --- *)
  let local_crunch =
    if p.local_compute <= 0 then []
    else begin
      let chunk = 1 + (p.local_compute / 4) in
      List.init 4 (fun i ->
          Program.I
            { Program.pc = pspr + 0x3000 + (4 * i); kind = Program.Compute chunk })
    end
  in
  let period = acquisition @ compute_code @ table_walks @ update @ local_crunch in
  let name =
    Printf.sprintf "control_loop_%s"
      (match variant with S1 -> "sc1" | S2 -> "sc2")
  in
  Program.make ~name [ Program.loop p.iterations period ]


(* Scenario 2 doubles the flash-resident code and shifts most data traffic
   to cacheable memory (paper Table 6: PM roughly doubles, DS collapses,
   DMC small, DMD zero). *)
let app_params variant =
  match variant with
  | S1 -> default_params
  | S2 ->
    {
      default_params with
      code_lines = 1536;
      table_walk = 240;
      signal_words = 32;
      state_words = 32;
      local_compute = 16_000;
    }

let app variant = build variant (app_params variant)

let app_input_variants variant ~n =
  if n < 1 then invalid_arg "Control_loop.app_input_variants: n < 1";
  let base = app_params variant in
  List.init n (fun i -> build variant { base with seed = base.seed + (101 * i) })

let variant_of_scenario (s : Scenario.t) =
  if s.Scenario.name = "scenario2" then S2 else S1

let pp_params fmt p =
  Format.fprintf fmt
    "@[<v>iterations=%d signal=%d state=%d walk=%d code_lines=%d@,\
     compute/line=%d local=%d cache_lines=%d const_lines=%d@,\
     lmu_region=0x%x pf_region=0x%x seed=%d@]"
    p.iterations p.signal_words p.state_words p.table_walk p.code_lines
    p.compute_per_line p.local_compute p.cache_data_lines p.const_lines
    p.lmu_region p.pf_region p.seed
