(** A realistic automotive task profile (paper Section 4.2, closing
    remark: "preliminary results on real-world automotive use cases show
    much lower contention bounds (~10%) than those of our benchmark
    (30-40%)").

    Unlike the stress benchmark, production AUTOSAR runnables keep hot
    code and state in the core-local scratchpads and touch shared memory
    only at frame boundaries: a short burst of sensor/actuator I/O plus an
    occasional calibration-table lookup, surrounded by long
    scratchpad-resident computation. The resulting SRI traffic — and hence
    any contention bound — is an order of magnitude below the stress
    application's. *)

type params = {
  frames : int;  (** control frames to execute *)
  io_words : int;  (** shared LMU words exchanged per frame *)
  calib_lookups : int;  (** flash calibration-table reads per frame *)
  resident_code_lines : int;
      (** flash code touched per frame; sized to fit the I-cache so only
          cold misses reach the SRI *)
  frame_compute : int;  (** scratchpad-resident cycles per frame *)
  lmu_region : int;
  pf_region : int;
  seed : int;
}

val default_params : params

val task : ?params:params -> unit -> Tcsim.Program.t
(** The engine-control style task, deployed per Scenario 1 conventions
    (cacheable flash code, non-cacheable LMU I/O). *)
