(** DMA-style background traffic.

    On the real TC27x the SRI also serves non-CPU masters (DMA channels
    moving ADC samples, communication buffers, flash data). A DMA channel
    is modelled as a cache-less master executing a transfer schedule —
    which makes it a contender whose per-target access counts are known
    {e by specification} rather than by measurement: integrators configure
    DMA transfer sizes and rates explicitly.

    {!synthesized_counters} turns the specified schedule into the
    counter readings the contention models consume, using the minimal
    stall per request — exactly the conservative reading direction the
    models assume (their access-count bounds then dominate the true
    counts). *)

open Platform

type schedule = {
  bursts : int;  (** number of transfer bursts *)
  words_per_burst : int;  (** words moved per burst *)
  src : Target.t;  (** read side; [Dfl] or [Lmu] *)
  dst : Target.t;  (** write side; [Lmu] or [Dfl] *)
  gap_cycles : int;  (** idle cycles between bursts (transfer rate) *)
  region_offset : int;
}

val default_schedule : schedule
(** 200 bursts of 8 words, dfl -> lmu, mimicking a periodic ADC drain. *)

val program : ?schedule:schedule -> unit -> Tcsim.Program.t
(** The transfer schedule as a master program (to run on a cache-less
    core).
    @raise Invalid_argument when src or dst cannot carry data traffic in
    the required direction (e.g. writes to program flash). *)

val access_profile : schedule -> Access_profile.t
(** The exact per-target SRI requests the schedule performs. *)

val synthesized_counters : Latency.t -> schedule -> Counters.t
(** Specification-derived counter readings: stall counters synthesized
    from the schedule at the minimal per-request stall, cache counters
    zero (a DMA master has no caches). *)
