(** Sparse linear expressions over integer-indexed variables with exact
    rational coefficients, plus a constant term.

    Variables are identified by the integer handles handed out by
    {!Model.add_var}; this module never interprets them. *)

open Numeric

type t

val zero : t
val const : Q.t -> t
val var : ?coeff:Q.t -> int -> t
(** [var v] is the expression [1*v]; [var ~coeff v] is [coeff*v]. *)

val of_terms : ?const:Q.t -> (Q.t * int) list -> t
(** Builds [Σ coeff_i * var_i + const]; repeated variables are summed. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Q.t -> t -> t
val add_term : t -> Q.t -> int -> t
val add_const : t -> Q.t -> t

val coeff : t -> int -> Q.t
(** Coefficient of a variable ([Q.zero] if absent). *)

val constant : t -> Q.t

val terms : t -> (int * Q.t) list
(** Non-zero terms in increasing variable order. *)

val vars : t -> int list
(** Variables with non-zero coefficient, increasing. *)

val eval : t -> (int -> Q.t) -> Q.t
(** [eval e lookup] substitutes [lookup v] for every variable. *)

val is_constant : t -> bool
val equal : t -> t -> bool
val pp : names:(int -> string) -> Format.formatter -> t -> unit
