(** Exact two-phase primal simplex over rationals.

    Solves the continuous relaxation of a {!Model.t} (integrality markers
    are ignored). Bland's anti-cycling rule guarantees termination; all
    arithmetic is exact, so the returned status and values are sound — the
    property WCET analysis needs from its solver. *)

open Numeric

val solve : Model.t -> Solution.t
(** Solve with the bounds declared in the model. *)

val solve_with_bounds :
  Model.t -> lb:Q.t option array -> ub:Q.t option array -> Solution.t
(** Solve with overriding variable bounds (used by {!Branch_bound}); the
    arrays must have length [Model.num_vars]. The model's declared bounds
    are ignored in favour of the arrays.
    @raise Invalid_argument on a length mismatch. *)
