open Numeric

type t =
  | Optimal of { objective : Q.t; values : Q.t array }
  | Infeasible
  | Unbounded

let objective_exn = function
  | Optimal { objective; _ } -> objective
  | Infeasible -> failwith "Solution.objective_exn: infeasible"
  | Unbounded -> failwith "Solution.objective_exn: unbounded"

let values_exn = function
  | Optimal { values; _ } -> values
  | Infeasible -> failwith "Solution.values_exn: infeasible"
  | Unbounded -> failwith "Solution.values_exn: unbounded"

let value_exn s v = (values_exn s).(v)
let is_optimal = function Optimal _ -> true | Infeasible | Unbounded -> false

let pp fmt = function
  | Infeasible -> Format.pp_print_string fmt "infeasible"
  | Unbounded -> Format.pp_print_string fmt "unbounded"
  | Optimal { objective; values } ->
    Format.fprintf fmt "@[<v>optimal, objective = %a@," Q.pp objective;
    Array.iteri (fun v x -> Format.fprintf fmt "  x%d = %a@," v Q.pp x) values;
    Format.fprintf fmt "@]"
