open Numeric
module Imap = Map.Make (Int)

type t = { terms : Q.t Imap.t; const : Q.t }
(* Invariant: no binding in [terms] maps to zero. *)

let zero = { terms = Imap.empty; const = Q.zero }
let const c = { terms = Imap.empty; const = c }

let norm_add m v c =
  Imap.update v
    (function
      | None -> if Q.is_zero c then None else Some c
      | Some c0 ->
        let s = Q.add c0 c in
        if Q.is_zero s then None else Some s)
    m

let var ?(coeff = Q.one) v = { terms = norm_add Imap.empty v coeff; const = Q.zero }

let of_terms ?(const = Q.zero) l =
  let terms =
    List.fold_left (fun m (c, v) -> norm_add m v c) Imap.empty l
  in
  { terms; const }

let add a b =
  let terms = Imap.fold (fun v c m -> norm_add m v c) b.terms a.terms in
  { terms; const = Q.add a.const b.const }

let neg a = { terms = Imap.map Q.neg a.terms; const = Q.neg a.const }
let sub a b = add a (neg b)

let scale k a =
  if Q.is_zero k then zero
  else { terms = Imap.map (Q.mul k) a.terms; const = Q.mul k a.const }

let add_term a c v = { a with terms = norm_add a.terms v c }
let add_const a c = { a with const = Q.add a.const c }

let coeff a v = match Imap.find_opt v a.terms with Some c -> c | None -> Q.zero
let constant a = a.const
let terms a = Imap.bindings a.terms
let vars a = List.map fst (terms a)

let eval a lookup =
  Imap.fold (fun v c acc -> Q.add acc (Q.mul c (lookup v))) a.terms a.const

let is_constant a = Imap.is_empty a.terms
let equal a b = Q.equal a.const b.const && Imap.equal Q.equal a.terms b.terms

let pp ~names fmt a =
  let open Format in
  let first = ref true in
  Imap.iter
    (fun v c ->
       let s = Q.sign c in
       if !first then begin
         if s < 0 then pp_print_string fmt "-";
         first := false
       end
       else pp_print_string fmt (if s < 0 then " - " else " + ");
       let c = Q.abs c in
       if not (Q.equal c Q.one) then fprintf fmt "%a*" Q.pp c;
       pp_print_string fmt (names v))
    a.terms;
  if not (Q.is_zero a.const) || !first then begin
    if !first then Q.pp fmt a.const
    else if Q.sign a.const < 0 then fprintf fmt " - %a" Q.pp (Q.abs a.const)
    else fprintf fmt " + %a" Q.pp a.const
  end
