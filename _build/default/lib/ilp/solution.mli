(** Results of LP / ILP solving. *)

open Numeric

type t =
  | Optimal of { objective : Q.t; values : Q.t array }
      (** [values.(v)] is the assignment of model variable [v]. *)
  | Infeasible
  | Unbounded

val objective_exn : t -> Q.t
(** @raise Failure if the solution is not [Optimal]. *)

val values_exn : t -> Q.t array
(** @raise Failure if the solution is not [Optimal]. *)

val value_exn : t -> int -> Q.t
(** [value_exn s v] is variable [v]'s assignment.
    @raise Failure if the solution is not [Optimal]. *)

val is_optimal : t -> bool
val pp : Format.formatter -> t -> unit
