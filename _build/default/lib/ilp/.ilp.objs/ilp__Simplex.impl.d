lib/ilp/simplex.ml: Array Linexpr List Model Numeric Q Solution
