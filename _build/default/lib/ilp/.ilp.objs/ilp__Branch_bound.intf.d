lib/ilp/branch_bound.mli: Model Numeric Q Solution
