lib/ilp/simplex.mli: Model Numeric Q Solution
