lib/ilp/presolve.ml: Array Linexpr List Model Numeric Option Q
