lib/ilp/linexpr.mli: Format Numeric Q
