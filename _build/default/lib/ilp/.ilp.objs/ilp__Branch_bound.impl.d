lib/ilp/branch_bound.ml: Array Linexpr List Model Numeric Presolve Q Simplex Solution
