lib/ilp/linexpr.ml: Format Int List Map Numeric Q
