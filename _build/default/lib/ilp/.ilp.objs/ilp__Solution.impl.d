lib/ilp/solution.ml: Array Format Numeric Q
