lib/ilp/presolve.mli: Model Numeric Q
