lib/ilp/model.mli: Format Linexpr Numeric Q
