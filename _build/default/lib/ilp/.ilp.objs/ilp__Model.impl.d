lib/ilp/model.ml: Array Format Linexpr List Numeric Printf Q String
