lib/ilp/lp_format.ml: Array Bigint Buffer Bytes Fun Hashtbl Linexpr List Model Numeric Printf Q String
