lib/ilp/solution.mli: Format Numeric Q
