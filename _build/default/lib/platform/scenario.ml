type constraint_spec =
  | Zero of Target.t * Op.t
  | Code_sum_equals_pcache_miss of Target.t list
  | Data_sum_at_least_dcache_misses of Target.t list

type t = {
  name : string;
  description : string;
  deployment : Deployment.t;
  specs : constraint_spec list;
}

let section kind label place = { Deployment.kind; place; label }
let shared t c = Deployment.Shared (t, c)

let scenario1 =
  {
    name = "scenario1";
    description =
      "code: scratchpad + cacheable pf0/pf1; data: scratchpad + \
       non-cacheable shared lmu";
    deployment =
      Deployment.make_exn ~name:"scenario1"
        [
          section Op.Code "code_local" Deployment.Scratchpad;
          section Op.Code "code_pf0" (shared Target.Pf0 Deployment.Cacheable);
          section Op.Code "code_pf1" (shared Target.Pf1 Deployment.Cacheable);
          section Op.Data "data_local" Deployment.Scratchpad;
          section Op.Data "data_shared"
            (shared Target.Lmu Deployment.Non_cacheable);
        ];
    specs =
      [
        Zero (Target.Dfl, Op.Data);
        Zero (Target.Lmu, Op.Code);
        Zero (Target.Pf0, Op.Data);
        Zero (Target.Pf1, Op.Data);
        Code_sum_equals_pcache_miss [ Target.Pf0; Target.Pf1 ];
      ];
  }

let scenario2 =
  {
    name = "scenario2";
    description =
      "code: scratchpad + cacheable pf0/pf1; data: scratchpad + lmu \
       ($ and n$) + constant cacheable pf0/pf1";
    deployment =
      Deployment.make_exn ~name:"scenario2"
        [
          section Op.Code "code_local" Deployment.Scratchpad;
          section Op.Code "code_pf0" (shared Target.Pf0 Deployment.Cacheable);
          section Op.Code "code_pf1" (shared Target.Pf1 Deployment.Cacheable);
          section Op.Data "data_local" Deployment.Scratchpad;
          section Op.Data "data_lmu_nc"
            (shared Target.Lmu Deployment.Non_cacheable);
          section Op.Data "data_lmu_c" (shared Target.Lmu Deployment.Cacheable);
          section Op.Data "const_pf0" (shared Target.Pf0 Deployment.Cacheable);
          section Op.Data "const_pf1" (shared Target.Pf1 Deployment.Cacheable);
        ];
    specs =
      [
        Zero (Target.Dfl, Op.Data);
        Zero (Target.Lmu, Op.Code);
        Code_sum_equals_pcache_miss [ Target.Pf0; Target.Pf1 ];
        Data_sum_at_least_dcache_misses [ Target.Pf0; Target.Pf1; Target.Lmu ];
      ];
  }

let unrestricted =
  {
    name = "unrestricted";
    description = "no deployment knowledge; all admissible pairs allowed";
    deployment =
      Deployment.make_exn ~name:"unrestricted"
        [
          section Op.Code "code_pf0" (shared Target.Pf0 Deployment.Cacheable);
          section Op.Code "code_pf1" (shared Target.Pf1 Deployment.Cacheable);
          section Op.Code "code_lmu" (shared Target.Lmu Deployment.Cacheable);
          section Op.Data "data_pf0" (shared Target.Pf0 Deployment.Cacheable);
          section Op.Data "data_pf1" (shared Target.Pf1 Deployment.Cacheable);
          section Op.Data "data_lmu"
            (shared Target.Lmu Deployment.Non_cacheable);
          section Op.Data "data_dfl"
            (shared Target.Dfl Deployment.Non_cacheable);
        ];
    specs = [];
  }

let all = [ scenario1; scenario2; unrestricted ]

let zero_pairs s =
  List.filter_map (function Zero (t, o) -> Some (t, o) | _ -> None) s.specs

let allowed_pairs s =
  let zeros = zero_pairs s in
  List.filter
    (fun (t, o) ->
       not
         (List.exists
            (fun (zt, zo) -> Target.equal zt t && Op.equal zo o)
            zeros))
    Op.valid_pairs

let find name = List.find_opt (fun s -> s.name = name) all

let pp fmt s =
  Format.fprintf fmt "@[<v>%s: %s@,%a@,tailoring:@," s.name s.description
    Deployment.pp s.deployment;
  List.iter
    (fun spec ->
       match spec with
       | Zero (t, o) ->
         Format.fprintf fmt "  n[%s,%s] = 0@," (Target.to_string t)
           (Op.to_string o)
       | Code_sum_equals_pcache_miss ts ->
         Format.fprintf fmt "  sum code over {%s} = PCACHE_MISS@,"
           (String.concat "," (List.map Target.to_string ts))
       | Data_sum_at_least_dcache_misses ts ->
         Format.fprintf fmt "  sum data over {%s} >= DMC+DMD@,"
           (String.concat "," (List.map Target.to_string ts)))
    s.specs;
  Format.fprintf fmt "@]"
