(** TriCore family variants (paper Section 4.3, "Adaptability to other
    platforms").

    The contention models are parameterised entirely by the latency/stall
    table and the deployment scenarios, so porting them to another TriCore
    derivative amounts to re-running the calibration microbenchmarks and
    swapping the table. This module collects the TC277 reference constants
    plus illustrative derivative timings (the paper names the family but
    publishes constants only for the TC27x; the variants here exercise the
    portability path end to end, they are not datasheet values). *)

type t = { name : string; description : string; latency : Latency.t }

val tc277 : t
(** The paper's reference platform: Table 2 constants. *)

val tc27x_slow_flash : t
(** A derivative running the flash interfaces at higher wait states
    (e.g. a faster core clock against the same flash macro). *)

val tc27x_fast_lmu : t
(** A derivative with a lower-latency LMU SRAM path. *)

val all : t list
val find : string -> t option
val pp : Format.formatter -> t -> unit
