(** SRI transaction timing constants — the paper's Table 2.

    For every admissible (target, operation) pair the table records:
    - [lmax]: the maximum observable end-to-end latency of a single SRI
      transaction in isolation — the per-request delay a contender can
      inflict (Eq. 1, Eq. 9);
    - [lmin]: the minimum observable end-to-end latency;
    - [min_stall] ([cs^{t,o}]): the lowest number of pipeline stall cycles a
      single request of that type can contribute to PMEM_STALL / DMEM_STALL,
      after prefetching and SRI pipelining — the divisor that turns stall
      readings into access-count upper bounds (Eq. 4).

    The LMU additionally has a dirty-miss latency ([lmax_dirty]) paid when a
    cacheable LMU access evicts a dirty line (Table 2 reports it in
    brackets: 21 vs 11). *)

type entry = { lmax : int; lmin : int; min_stall : int }

type t
(** A complete timing table. *)

val default : t
(** Table 2 of the paper:
    {v
             lmu      pf0/pf1   dfl
    lmax     11 (21)  16        43
    lmin     11       12        43
    cs co    11       6         -
    cs da    10       11        42
    v} *)

val make : (Target.t * Op.t * entry) list -> lmu_dirty_lmax:int -> t
(** Builds a table from explicit entries; every admissible pair from
    {!Op.valid_pairs} must be present and satisfy
    [1 <= min_stall <= lmin <= lmax] (the stall floor is achieved under
    streaming, and every observable wait is at least [lmin]).
    @raise Invalid_argument if a pair is missing, duplicated or invalid. *)

val entry : t -> Target.t -> Op.t -> entry
(** @raise Invalid_argument on an inadmissible pair (code to dfl). *)

val lmax : t -> Target.t -> Op.t -> int
val lmin : t -> Target.t -> Op.t -> int
val min_stall : t -> Target.t -> Op.t -> int
val lmu_dirty_lmax : t -> int

val lmax_op : ?dirty:bool -> t -> Target.t -> Op.t -> int
(** [lmax] with the LMU dirty-miss latency substituted when [dirty] is set
    and the pair is (lmu, data). Default [dirty = false]. *)

val cs_min : t -> Op.t -> int
(** Eqs. 2–3: the minimum stall cycles over all targets admissible for the
    given operation type — [cs^{co}_{min}] or [cs^{da}_{min}]. *)

val worst_latency : ?dirty:bool -> t -> Op.t -> int
(** Eqs. 6–7: the largest delay a request of the given type can suffer from
    a co-runner request on any target it may share — [l^{co}_{max}] or
    [l^{da}_{max}]. With [dirty] the LMU dirty-miss latency is considered
    (the fTC assumption the paper calls out for Scenario 2). *)

val pp : Format.formatter -> t -> unit
