(** Debug-counter readings exposed by the TC27x Debug Support Unit.

    The contention models consume exactly the counters of the paper's
    Table 4, collected per core over one run:
    - [ccnt]: on-chip cycle counter (execution time);
    - [pmem_stall] (PS): cycles the pipeline stalled on the program memory
      interface;
    - [dmem_stall] (DS): cycles the pipeline stalled on the data memory
      interface;
    - [pcache_miss] (PM): instruction-cache miss count;
    - [dcache_miss_clean] (DMC) / [dcache_miss_dirty] (DMD): data-cache
      misses without / with a dirty-line write-back. *)

type t = {
  ccnt : int;
  pmem_stall : int;
  dmem_stall : int;
  pcache_miss : int;
  dcache_miss_clean : int;
  dcache_miss_dirty : int;
}

val zero : t
val add : t -> t -> t
val sub : t -> t -> t
(** Pointwise; used to scope readings to a program fragment. *)

val scale_div : t -> num:int -> den:int -> t
(** Pointwise [ceil (v * num / den)] — scaling counter envelopes (e.g.
    building contender templates).
    @raise Invalid_argument on non-positive [den] or negative [num]. *)

val equal : t -> t -> bool

val is_valid : t -> bool
(** All fields non-negative and no counter exceeds [ccnt] where that would
    be physically impossible (stall cycles are a subset of cycles). *)

val pp : Format.formatter -> t -> unit

val pp_row : Format.formatter -> t -> unit
(** One-line [PM DMC DMD PS DS] rendering matching the paper's Table 6
    column order. *)
