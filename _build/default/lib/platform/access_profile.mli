(** Per-target access counts (PTAC): the vector [n^{t,o}] of SRI requests a
    task issues, broken down by target resource and operation type.

    This is the paper's central quantity: the ideal model needs it exactly,
    the TC27x cannot measure it directly (Section 3.3.3), and the ILP-PTAC
    model searches over all PTAC vectors consistent with the observed stall
    counters. The simulator also produces ground-truth instances of this
    type, which the tests use to validate the models' bounds. *)

type t

val zero : t
val make : ((Target.t * Op.t) * int) list -> t
(** Unlisted pairs count 0.
    @raise Invalid_argument on an inadmissible pair or a negative count. *)

val get : t -> Target.t -> Op.t -> int
val set : t -> Target.t -> Op.t -> int -> t
val incr : ?by:int -> t -> Target.t -> Op.t -> t

val total : t -> int
(** [n_x]: all SRI requests (Eq. 5). *)

val total_op : t -> Op.t -> int
(** [n^{co}_x] or [n^{da}_x]. *)

val total_target : t -> Target.t -> int

val fold : (Target.t -> Op.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Over admissible pairs in {!Op.valid_pairs} order, including zeros. *)

val map2 : (int -> int -> int) -> t -> t -> t

val stall_cycles : Latency.t -> t -> Op.t -> int
(** Best-case stall cycles this profile produces on the given interface:
    [Σ_t n^{t,o} · cs^{t,o}] — the synthesis direction of Eqs. 20–23. *)

val scale : int -> t -> t
val equal : t -> t -> bool
val dominates : t -> t -> bool
(** [dominates a b] iff every component of [a] is [>=] that of [b]. *)

val pp : Format.formatter -> t -> unit
