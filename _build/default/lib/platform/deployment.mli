(** Deployment configurations: where code and data live and with which
    cacheability — the paper's Table 3 admissibility matrix and the two
    reference scenarios of Figure 3.

    System software statically maps stack, functions and data onto local
    scratchpads or the shared memories, in cacheable or non-cacheable mode;
    the contention model takes this layout as input to restrict the
    feasible per-target access counts. *)

type cacheability = Cacheable | Non_cacheable

type placement =
  | Scratchpad  (** core-local PSPR/DSPR: generates no SRI traffic *)
  | Shared of Target.t * cacheability

val admissible : Op.t -> cacheability -> Target.t -> bool
(** Table 3: cacheable/non-cacheable code and cacheable data may be placed
    on pf0, pf1 or the LMU, never the data flash; non-cacheable data may be
    placed only on the data flash or the LMU. *)

val check_placement : Op.t -> placement -> (unit, string) result
(** Validates a placement against {!admissible}. Scratchpad placements are
    always admissible. *)

type section = { kind : Op.t; place : placement; label : string }
(** A contiguous program section (function group or data block). *)

type t = { name : string; sections : section list }
(** A full deployment configuration. *)

val make : name:string -> section list -> (t, string) result
(** Builds a configuration, validating every section. *)

val make_exn : name:string -> section list -> t
(** @raise Invalid_argument if a section is inadmissible. *)

val sri_pairs : t -> (Target.t * Op.t) list
(** Distinct (target, op) pairs on which this deployment can generate SRI
    traffic (scratchpad sections excluded), in {!Op.valid_pairs} order. *)

val code_counted_by_pcache_miss : t -> bool
(** Whether PCACHE_MISS counts exactly the SRI code requests: true iff every
    non-scratchpad code section is cacheable (as in both paper scenarios). *)

val data_all_cacheable_on : t -> Target.t list
(** Targets that receive only cacheable data from this deployment. *)

val pp : Format.formatter -> t -> unit
