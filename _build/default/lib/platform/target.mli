(** SRI target (slave) resources of the AURIX TC27x.

    The Shared Resource Interconnect connects the three TriCore masters to
    the shared memory system: the LMU SRAM and the PMU flash, the latter
    exposed through three independent interfaces — two program-flash banks
    ([Pf0], [Pf1]) and the data flash ([Dfl]). The SRI can serve requests to
    distinct targets in parallel; contention arises only between requests to
    the same target (paper, Section 2). *)

type t = Dfl | Pf0 | Pf1 | Lmu

val all : t list
(** [Dfl; Pf0; Pf1; Lmu] — the set T of the paper. *)

val code_targets : t list
(** Targets reachable by code fetches: pf0, pf1, lmu (Figure 2). *)

val data_targets : t list
(** Targets reachable by data accesses: all of T (Figure 2). *)

val is_flash : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
