type t = { name : string; description : string; latency : Latency.t }

let entry lmax lmin min_stall = { Latency.lmax; lmin; min_stall }

let tc277 =
  {
    name = "tc277";
    description = "TC27x reference constants (paper Table 2)";
    latency = Latency.default;
  }

let tc27x_slow_flash =
  let pf_co = entry 20 14 8 in
  let pf_da = entry 20 14 13 in
  {
    name = "tc27x-slow-flash";
    description = "derivative with higher flash wait states";
    latency =
      Latency.make
        [
          (Target.Lmu, Op.Code, entry 11 11 11);
          (Target.Lmu, Op.Data, entry 11 11 10);
          (Target.Pf0, Op.Code, pf_co);
          (Target.Pf0, Op.Data, pf_da);
          (Target.Pf1, Op.Code, pf_co);
          (Target.Pf1, Op.Data, pf_da);
          (Target.Dfl, Op.Data, entry 50 50 49);
        ]
        ~lmu_dirty_lmax:21;
  }

let tc27x_fast_lmu =
  let pf_co = entry 16 12 6 in
  let pf_da = entry 16 12 11 in
  {
    name = "tc27x-fast-lmu";
    description = "derivative with a lower-latency LMU SRAM path";
    latency =
      Latency.make
        [
          (Target.Lmu, Op.Code, entry 8 8 8);
          (Target.Lmu, Op.Data, entry 8 8 7);
          (Target.Pf0, Op.Code, pf_co);
          (Target.Pf0, Op.Data, pf_da);
          (Target.Pf1, Op.Code, pf_co);
          (Target.Pf1, Op.Data, pf_da);
          (Target.Dfl, Op.Data, entry 43 43 42);
        ]
        ~lmu_dirty_lmax:16;
  }

let all = [ tc277; tc27x_slow_flash; tc27x_fast_lmu ]
let find name = List.find_opt (fun v -> v.name = name) all

let pp fmt v =
  Format.fprintf fmt "@[<v>%s: %s@,%a@]" v.name v.description Latency.pp v.latency
