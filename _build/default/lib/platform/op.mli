(** Operation types on an SRI target: the set O = \{co, da\} of the paper.

    The TC27x distinguishes latencies per access type, but the model only
    discriminates between instruction fetches ([Code]) and data accesses
    ([Data]); within each class the reported latency is the maximum of read
    and write (paper, Section 2, Table 2). *)

type t = Code | Data

val all : t list
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val valid : Target.t -> t -> bool
(** [valid t o] is whether requests of type [o] may target [t]: code never
    targets the data flash (Figure 2). *)

val valid_pairs : (Target.t * t) list
(** All admissible (target, op) pairs, in a fixed order. *)
