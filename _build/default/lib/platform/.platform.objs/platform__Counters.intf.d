lib/platform/counters.mli: Format
