lib/platform/variants.mli: Format Latency
