lib/platform/deployment.mli: Format Op Target
