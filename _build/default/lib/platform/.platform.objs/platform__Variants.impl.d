lib/platform/variants.ml: Format Latency List Op Target
