lib/platform/op.ml: Format Int List Target
