lib/platform/op.mli: Format Target
