lib/platform/target.mli: Format
