lib/platform/latency.ml: Format List Map Op Printf Target
