lib/platform/scenario.mli: Deployment Format Op Target
