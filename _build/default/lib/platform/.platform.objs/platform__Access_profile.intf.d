lib/platform/access_profile.mli: Format Latency Op Target
