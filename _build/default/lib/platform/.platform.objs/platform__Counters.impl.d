lib/platform/counters.ml: Format
