lib/platform/target.ml: Format Int
