lib/platform/access_profile.ml: Array Format Latency List Op Printf Target
