lib/platform/deployment.ml: Format List Op Printf Target
