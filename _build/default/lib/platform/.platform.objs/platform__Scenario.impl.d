lib/platform/scenario.ml: Deployment Format List Op String Target
