lib/platform/latency.mli: Format Op Target
