type t = Code | Data

let all = [ Code; Data ]
let equal a b = a = b
let rank = function Code -> 0 | Data -> 1
let compare a b = Int.compare (rank a) (rank b)
let to_string = function Code -> "co" | Data -> "da"

let of_string = function
  | "co" | "code" -> Some Code
  | "da" | "data" -> Some Data
  | _ -> None

let pp fmt o = Format.pp_print_string fmt (to_string o)

let valid target o =
  match (target, o) with
  | Target.Dfl, Code -> false
  | (Target.Dfl | Target.Pf0 | Target.Pf1 | Target.Lmu), (Code | Data) -> true

let valid_pairs =
  List.concat_map
    (fun t -> List.filter_map (fun o -> if valid t o then Some (t, o) else None) all)
    Target.all
