(* Dense representation over the 7 admissible (target, op) pairs. *)

let pairs = Array.of_list Op.valid_pairs
let npairs = Array.length pairs

let index target op =
  let rec go i =
    if i >= npairs then
      invalid_arg
        (Printf.sprintf "Access_profile: inadmissible pair (%s, %s)"
           (Target.to_string target) (Op.to_string op))
    else begin
      let t, o = pairs.(i) in
      if Target.equal t target && Op.equal o op then i else go (i + 1)
    end
  in
  go 0

type t = int array (* length npairs *)

let zero = Array.make npairs 0

let make l =
  let a = Array.make npairs 0 in
  List.iter
    (fun ((target, op), n) ->
       if n < 0 then invalid_arg "Access_profile.make: negative count";
       let i = index target op in
       a.(i) <- a.(i) + n)
    l;
  a

let get p target op = p.(index target op)

let set p target op n =
  if n < 0 then invalid_arg "Access_profile.set: negative count";
  let a = Array.copy p in
  a.(index target op) <- n;
  a

let incr ?(by = 1) p target op =
  let a = Array.copy p in
  let i = index target op in
  a.(i) <- a.(i) + by;
  if a.(i) < 0 then invalid_arg "Access_profile.incr: negative count";
  a

let total p = Array.fold_left ( + ) 0 p

let total_op p op =
  let acc = ref 0 in
  Array.iteri (fun i n -> if Op.equal (snd pairs.(i)) op then acc := !acc + n) p;
  !acc

let total_target p target =
  let acc = ref 0 in
  Array.iteri
    (fun i n -> if Target.equal (fst pairs.(i)) target then acc := !acc + n)
    p;
  !acc

let fold f p init =
  let acc = ref init in
  Array.iteri
    (fun i n ->
       let t, o = pairs.(i) in
       acc := f t o n !acc)
    p;
  !acc

let map2 f a b = Array.init npairs (fun i -> f a.(i) b.(i))

let stall_cycles lat p op =
  fold
    (fun t o n acc ->
       if Op.equal o op then acc + (n * Latency.min_stall lat t o) else acc)
    p 0

let scale k p =
  if k < 0 then invalid_arg "Access_profile.scale: negative factor";
  Array.map (fun n -> n * k) p

let equal a b = a = b
let dominates a b = Array.for_all2 (fun x y -> x >= y) a b

let pp fmt p =
  Format.fprintf fmt "@[<h>{";
  Array.iteri
    (fun i n ->
       if n <> 0 then begin
         let t, o = pairs.(i) in
         Format.fprintf fmt " %s.%s=%d" (Target.to_string t) (Op.to_string o) n
       end)
    p;
  Format.fprintf fmt " }@]"
