type entry = { lmax : int; lmin : int; min_stall : int }

module Pair = struct
  type t = Target.t * Op.t

  let compare (t1, o1) (t2, o2) =
    match Target.compare t1 t2 with 0 -> Op.compare o1 o2 | c -> c
end

module Pmap = Map.Make (Pair)

type t = { entries : entry Pmap.t; lmu_dirty_lmax : int }

let make entries ~lmu_dirty_lmax =
  let table =
    List.fold_left
      (fun acc (target, op, e) ->
         if not (Op.valid target op) then
           invalid_arg
             (Printf.sprintf "Latency.make: invalid pair (%s, %s)"
                (Target.to_string target) (Op.to_string op));
         (* The timing model requires 1 <= cs <= lmin <= lmax: the stall
            floor is achieved under streaming (lmin) and every observable
            wait is at least lmin. *)
         if not (1 <= e.min_stall && e.min_stall <= e.lmin && e.lmin <= e.lmax)
         then
           invalid_arg
             (Printf.sprintf
                "Latency.make: (%s, %s) must satisfy 1 <= cs <= lmin <= lmax"
                (Target.to_string target) (Op.to_string op));
         if Pmap.mem (target, op) acc then
           invalid_arg
             (Printf.sprintf "Latency.make: duplicate pair (%s, %s)"
                (Target.to_string target) (Op.to_string op));
         Pmap.add (target, op) e acc)
      Pmap.empty entries
  in
  List.iter
    (fun (target, op) ->
       if not (Pmap.mem (target, op) table) then
         invalid_arg
           (Printf.sprintf "Latency.make: missing pair (%s, %s)"
              (Target.to_string target) (Op.to_string op)))
    Op.valid_pairs;
  { entries = table; lmu_dirty_lmax }

(* Paper Table 2. pf0 and pf1 share the PMU program-flash timing column. *)
let default =
  let pf_co = { lmax = 16; lmin = 12; min_stall = 6 } in
  let pf_da = { lmax = 16; lmin = 12; min_stall = 11 } in
  make
    [
      (Target.Lmu, Op.Code, { lmax = 11; lmin = 11; min_stall = 11 });
      (Target.Lmu, Op.Data, { lmax = 11; lmin = 11; min_stall = 10 });
      (Target.Pf0, Op.Code, pf_co);
      (Target.Pf0, Op.Data, pf_da);
      (Target.Pf1, Op.Code, pf_co);
      (Target.Pf1, Op.Data, pf_da);
      (Target.Dfl, Op.Data, { lmax = 43; lmin = 43; min_stall = 42 });
    ]
    ~lmu_dirty_lmax:21

let entry t target op =
  match Pmap.find_opt (target, op) t.entries with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Latency.entry: inadmissible pair (%s, %s)"
         (Target.to_string target) (Op.to_string op))

let lmax t target op = (entry t target op).lmax
let lmin t target op = (entry t target op).lmin
let min_stall t target op = (entry t target op).min_stall
let lmu_dirty_lmax t = t.lmu_dirty_lmax

let lmax_op ?(dirty = false) t target op =
  if dirty && Target.equal target Target.Lmu && Op.equal op Op.Data then
    t.lmu_dirty_lmax
  else lmax t target op

let admissible_targets = function
  | Op.Code -> Target.code_targets
  | Op.Data -> Target.data_targets

let cs_min t op =
  admissible_targets op
  |> List.map (fun target -> min_stall t target op)
  |> List.fold_left min max_int

(* Eq. 6: a code access of the task under analysis can be delayed by any
   co-runner request (code or data) to the code-reachable targets.
   Eq. 7: a data access can additionally collide on the data flash. *)
let worst_latency ?(dirty = false) t op =
  let collide_targets = admissible_targets op in
  List.fold_left
    (fun acc target ->
       List.fold_left
         (fun acc o ->
            if Op.valid target o then max acc (lmax_op ~dirty t target o)
            else acc)
         acc Op.all)
    0 collide_targets

let pp fmt t =
  Format.fprintf fmt "@[<v>target op  lmax lmin cs@,";
  List.iter
    (fun (target, op) ->
       let e = entry t target op in
       Format.fprintf fmt "%-6s %-3s %4d %4d %3d@," (Target.to_string target)
         (Op.to_string op) e.lmax e.lmin e.min_stall)
    Op.valid_pairs;
  Format.fprintf fmt "lmu dirty lmax: %d@]" t.lmu_dirty_lmax
