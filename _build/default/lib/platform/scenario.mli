(** Deployment scenarios and the model-tailoring facts they justify
    (paper Figure 3 and Table 5).

    A scenario bundles a deployment configuration with the *exact*
    information that configuration makes derivable from debug counters —
    e.g. when all SRI code is cacheable, PCACHE_MISS counts SRI code
    requests exactly. The ILP-PTAC model turns each {!constraint_spec} into
    additional ILP constraints; the fTC model can only exploit them for the
    task under analysis (Section 4.1). *)

type constraint_spec =
  | Zero of Target.t * Op.t
      (** [n^{t,o}_x = 0]: the deployment generates no such traffic. *)
  | Code_sum_equals_pcache_miss of Target.t list
      (** [Σ_{t∈list} n^{t,co}_x = PM_x]: all SRI code is cacheable, so the
          I-cache miss counter is the exact SRI code request count. *)
  | Data_sum_at_least_dcache_misses of Target.t list
      (** [Σ_{t∈list} n^{t,da}_x ≥ DMC_x + DMD_x]: cacheable data misses
          are SRI data requests to one of the listed targets (which one is
          unknown — Scenario 2's partial information). *)

type t = {
  name : string;
  description : string;
  deployment : Deployment.t;
  specs : constraint_spec list;
}

val scenario1 : t
(** Figure 3a: code and data partly in scratchpads; remaining (cacheable)
    code fetched from pf0/pf1; non-cacheable shared data in the LMU.
    Tailoring (Table 5, left): no dfl data, no lmu code, no pf data;
    pf0+pf1 code = PCACHE_MISS. *)

val scenario2 : t
(** Figure 3b: code and data partly in scratchpads; cacheable code on
    pf0/pf1; data on the LMU (cacheable and non-cacheable) and constant
    cacheable data on pf0/pf1. Tailoring (Table 5, right): no dfl data, no
    lmu code; pf0+pf1 code = PCACHE_MISS; pf0+pf1+lmu data ≥ DMC+DMD. *)

val unrestricted : t
(** No deployment knowledge: every admissible (target, op) pair allowed and
    no tailoring constraints — the weakest, fully conservative setting. *)

val all : t list

val allowed_pairs : t -> (Target.t * Op.t) list
(** (target, op) pairs not excluded by a [Zero] spec, in
    {!Op.valid_pairs} order. *)

val zero_pairs : t -> (Target.t * Op.t) list
val find : string -> t option
val pp : Format.formatter -> t -> unit
