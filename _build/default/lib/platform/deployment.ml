type cacheability = Cacheable | Non_cacheable

type placement = Scratchpad | Shared of Target.t * cacheability

(* Table 3. The only inadmissible combinations are: anything on the data
   flash except non-cacheable data, and non-cacheable data on program
   flash. *)
let admissible op cacheability target =
  match (op, cacheability, target) with
  | Op.Code, _, Target.Dfl -> false
  | Op.Code, _, (Target.Pf0 | Target.Pf1 | Target.Lmu) -> true
  | Op.Data, Cacheable, Target.Dfl -> false
  | Op.Data, Cacheable, (Target.Pf0 | Target.Pf1 | Target.Lmu) -> true
  | Op.Data, Non_cacheable, (Target.Dfl | Target.Lmu) -> true
  | Op.Data, Non_cacheable, (Target.Pf0 | Target.Pf1) -> false

let check_placement op = function
  | Scratchpad -> Ok ()
  | Shared (target, c) ->
    if admissible op c target then Ok ()
    else
      Error
        (Printf.sprintf "%s %s on %s is not admissible (Table 3)"
           (match c with Cacheable -> "cacheable" | Non_cacheable -> "non-cacheable")
           (match op with Op.Code -> "code" | Op.Data -> "data")
           (Target.to_string target))

type section = { kind : Op.t; place : placement; label : string }
type t = { name : string; sections : section list }

let make ~name sections =
  let rec check = function
    | [] -> Ok { name; sections }
    | s :: rest ->
      (match check_placement s.kind s.place with
       | Ok () -> check rest
       | Error e -> Error (Printf.sprintf "section %s: %s" s.label e))
  in
  check sections

let make_exn ~name sections =
  match make ~name sections with
  | Ok d -> d
  | Error e -> invalid_arg ("Deployment.make_exn: " ^ e)

let sri_pairs d =
  let present (target, op) =
    List.exists
      (fun s ->
         match s.place with
         | Scratchpad -> false
         | Shared (t, _) -> Target.equal t target && Op.equal s.kind op)
      d.sections
  in
  List.filter present Op.valid_pairs

let code_counted_by_pcache_miss d =
  List.for_all
    (fun s ->
       match (s.kind, s.place) with
       | Op.Code, Shared (_, Non_cacheable) -> false
       | _ -> true)
    d.sections

let data_all_cacheable_on d =
  List.filter
    (fun target ->
       let data_sections_on =
         List.filter
           (fun s ->
              match (s.kind, s.place) with
              | Op.Data, Shared (t, _) -> Target.equal t target
              | _ -> false)
           d.sections
       in
       data_sections_on <> []
       && List.for_all
            (fun s ->
               match s.place with
               | Shared (_, Cacheable) -> true
               | Shared (_, Non_cacheable) | Scratchpad -> false)
            data_sections_on)
    Target.all

let pp fmt d =
  Format.fprintf fmt "@[<v>deployment %s:@," d.name;
  List.iter
    (fun s ->
       Format.fprintf fmt "  %-12s %-4s -> %s@," s.label
         (Op.to_string s.kind)
         (match s.place with
          | Scratchpad -> "scratchpad"
          | Shared (t, Cacheable) -> Target.to_string t ^ " ($)"
          | Shared (t, Non_cacheable) -> Target.to_string t ^ " (n$)"))
    d.sections;
  Format.fprintf fmt "@]"
