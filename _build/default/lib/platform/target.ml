type t = Dfl | Pf0 | Pf1 | Lmu

let all = [ Dfl; Pf0; Pf1; Lmu ]
let code_targets = [ Pf0; Pf1; Lmu ]
let data_targets = [ Dfl; Pf0; Pf1; Lmu ]
let is_flash = function Dfl | Pf0 | Pf1 -> true | Lmu -> false
let equal a b = a = b

let rank = function Dfl -> 0 | Pf0 -> 1 | Pf1 -> 2 | Lmu -> 3
let compare a b = Int.compare (rank a) (rank b)

let to_string = function
  | Dfl -> "dfl"
  | Pf0 -> "pf0"
  | Pf1 -> "pf1"
  | Lmu -> "lmu"

let of_string = function
  | "dfl" -> Some Dfl
  | "pf0" -> Some Pf0
  | "pf1" -> Some Pf1
  | "lmu" -> Some Lmu
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
