(** Arbitrary-precision signed integers.

    Implemented as sign-magnitude over base-[2^30] little-endian digit
    arrays. The ILP layer ({!module:Ilp}) performs exact rational pivoting,
    whose intermediate values overflow native integers; this module is the
    in-tree replacement for zarith (not installable in this environment).

    All values are immutable. Two values are structurally equal iff they
    denote the same integer (the representation is canonical). *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] iff [x] fits a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure if the value does not fit a native [int]. *)

val of_string : string -> t
(** Parses an optionally-signed decimal literal. Underscores are allowed as
    digit separators.
    @raise Invalid_argument on a malformed literal. *)

val to_string : t -> string

val to_float : t -> float
(** Best-effort conversion; loses precision beyond 53 bits. *)

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** Euclidean division: [divmod a b = (q, r)] with [a = q*b + r] and
    [0 <= r < |b|].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val tdiv : t -> t -> t
(** Truncated division (rounds toward zero), matching OCaml's [/]. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0].
    @raise Invalid_argument on a negative exponent. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift (floor division by a power of two). *)

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
