(** Exact rational arithmetic over {!Bigint}.

    Values are kept in canonical form: the denominator is strictly positive
    and coprime with the numerator; zero is represented as [0/1]. Canonical
    form makes structural equality coincide with numerical equality. *)

type t = private { num : Bigint.t; den : Bigint.t }

(** {1 Construction} *)

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalised rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b].
    @raise Division_by_zero if [b = 0]. *)

val of_string : string -> t
(** Accepts ["a"], ["a/b"] and decimal notation ["a.b"] with optional sign.
    @raise Invalid_argument on malformed input. *)

(** {1 Inspection} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val to_bigint_floor : t -> Bigint.t
val to_bigint_ceil : t -> Bigint.t

val to_int_floor : t -> int
(** @raise Failure when out of native-int range. *)

val to_int_ceil : t -> int
(** @raise Failure when out of native-int range. *)

val to_float : t -> float

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when the divisor is zero. *)

val mul_int : t -> int -> t
val floor : t -> t
val ceil : t -> t

val frac : t -> t
(** Fractional part: [x - floor x], in [0, 1). *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
