(* Canonical rationals: den > 0, gcd (num, den) = 1, zero is 0/1. *)

type t = { num : Bigint.t; den : Bigint.t }

let bi = Bigint.of_int

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    { num = Bigint.div num g; den = Bigint.div den g }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let minus_one = { num = Bigint.minus_one; den = Bigint.one }

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (bi n)
let of_ints a b = make (bi a) (bi b)

let num x = x.num
let den x = x.den
let sign x = Bigint.sign x.num
let is_zero x = Bigint.is_zero x.num
let is_integer x = Bigint.equal x.den Bigint.one

let equal x y = Bigint.equal x.num y.num && Bigint.equal x.den y.den

let compare x y =
  (* a/b ? c/d  <=>  a*d ? c*b  (b, d > 0). *)
  Bigint.compare (Bigint.mul x.num y.den) (Bigint.mul y.num x.den)

let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y
let neg x = { x with num = Bigint.neg x.num }
let abs x = if sign x < 0 then neg x else x

let inv x =
  if is_zero x then raise Division_by_zero;
  if Bigint.sign x.num > 0 then { num = x.den; den = x.num }
  else { num = Bigint.neg x.den; den = Bigint.neg x.num }

let add x y =
  make
    (Bigint.add (Bigint.mul x.num y.den) (Bigint.mul y.num x.den))
    (Bigint.mul x.den y.den)

let sub x y = add x (neg y)
let mul x y = make (Bigint.mul x.num y.num) (Bigint.mul x.den y.den)

let div x y =
  if is_zero y then raise Division_by_zero;
  mul x (inv y)

let mul_int x n = make (Bigint.mul x.num (bi n)) x.den
let to_bigint_floor x = Bigint.div x.num x.den
let to_bigint_ceil x = Bigint.neg (Bigint.div (Bigint.neg x.num) x.den)
let to_int_floor x = Bigint.to_int_exn (to_bigint_floor x)
let to_int_ceil x = Bigint.to_int_exn (to_bigint_ceil x)
let floor x = of_bigint (to_bigint_floor x)
let ceil x = of_bigint (to_bigint_ceil x)
let frac x = sub x (floor x)
let to_float x = Bigint.to_float x.num /. Bigint.to_float x.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let a = Bigint.of_string (String.sub s 0 i) in
    let b = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make a b
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac_part = String.sub s (i + 1) (String.length s - i - 1) in
       if frac_part = "" then invalid_arg "Q.of_string: trailing dot";
       let negative = String.length int_part > 0 && int_part.[0] = '-' in
       let ip = if int_part = "" || int_part = "-" || int_part = "+"
         then Bigint.zero else Bigint.of_string int_part in
       let fp = Bigint.of_string frac_part in
       let scale = Bigint.pow (bi 10) (String.length frac_part) in
       let mag = add (of_bigint (Bigint.abs ip)) (make fp scale) in
       if negative || Bigint.sign ip < 0 then neg mag else mag)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) x y = compare x y < 0
  let ( <= ) x y = compare x y <= 0
  let ( > ) x y = compare x y > 0
  let ( >= ) x y = compare x y >= 0
end

let to_string x =
  if is_integer x then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let pp fmt x = Format.pp_print_string fmt (to_string x)
