(* Sign-magnitude arbitrary-precision integers, base 2^30.

   Representation invariants:
   - [sign] is -1, 0 or 1, and is 0 iff [mag] is empty;
   - [mag] is little-endian with no trailing zero digit;
   - every digit is in [0, base).

   Base 2^30 keeps all intermediate products of the schoolbook algorithms
   (digit * digit + carry) within the 63-bit native int range. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

(* Strip trailing zero digits; the result shares no suffix with the input. *)
let trim mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi = n - 1 then mag else Array.sub mag 0 (hi + 1)

let make sign mag =
  let mag = trim mag in
  if Array.length mag = 0 then zero
  else { sign = (if sign >= 0 then 1 else -1); mag }

let sign x = x.sign
let is_zero x = x.sign = 0

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int has no positive counterpart; carve digits off with mod. *)
    let rec digits n acc =
      if n = 0 then List.rev acc
      else digits (n / base) ((n mod base) :: acc)
    in
    let ds = digits (abs n) [] in
    { sign; mag = Array.of_list ds }
  end

(* Magnitude comparison: a < b => -1, a = b => 0, a > b => 1. *)
let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* Requires compare_mag a b >= 0. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land base_mask;
          carry := s lsr base_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    r
  end

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let rec add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (add_mag x.mag y.mag)
  else begin
    match compare_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> make x.sign (sub_mag x.mag y.mag)
    | _ -> make y.sign (sub_mag y.mag x.mag)
  end

and sub x y = add x (neg y)

let of_int n =
  (* Final version: handle min_int via (n+1) - 1 to avoid abs overflow. *)
  if n = min_int then sub (of_int (n + 1)) (of_int 1) else of_int n

let succ x = add x one
let pred x = sub x one

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else make (x.sign * y.sign) (mul_mag x.mag y.mag)

(* Divide magnitude by a single digit 0 < d < base. Returns (quot, rem). *)
let divmod_mag_digit a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth algorithm D on magnitudes. Requires |v| >= 2 digits, u >= v.
   Returns (quotient, remainder). *)
let divmod_mag_knuth u v =
  let n = Array.length v in
  (* Normalise so the top divisor digit has its high bit set. *)
  let shift =
    let rec go s top = if top >= base / 2 then s else go (s + 1) (top lsl 1) in
    go 0 v.(n - 1)
  in
  let shl a s =
    if s = 0 then Array.copy a
    else begin
      let la = Array.length a in
      let r = Array.make (la + 1) 0 in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let x = (a.(i) lsl s) lor !carry in
        r.(i) <- x land base_mask;
        carry := x lsr base_bits
      done;
      r.(la) <- !carry;
      r
    end
  in
  let shr a s =
    if s = 0 then trim a
    else begin
      let la = Array.length a in
      let r = Array.make la 0 in
      let carry = ref 0 in
      for i = la - 1 downto 0 do
        let x = (!carry lsl base_bits) lor a.(i) in
        r.(i) <- x lsr s;
        carry := x land ((1 lsl s) - 1)
      done;
      trim r
    end
  in
  let v = trim (shl v shift) in
  let u = shl u shift in
  (* Ensure u has an extra top slot. *)
  let u =
    let lu = Array.length u in
    if lu > 0 && u.(lu - 1) = 0 then u
    else begin
      let r = Array.make (lu + 1) 0 in
      Array.blit u 0 r 0 lu;
      r
    end
  in
  let m = Array.length u - 1 - n in
  let q = Array.make (m + 1) 0 in
  let vn1 = v.(n - 1) in
  let vn2 = if n >= 2 then v.(n - 2) else 0 in
  for j = m downto 0 do
    let top2 = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (top2 / vn1) in
    let rhat = ref (top2 mod vn1) in
    if !qhat >= base then begin
      qhat := base - 1;
      rhat := top2 - (!qhat * vn1)
    end;
    let continue = ref true in
    while
      !continue && !rhat < base
      && !qhat * vn2 > (!rhat lsl base_bits) lor u.(j + n - 2)
    do
      decr qhat;
      rhat := !rhat + vn1;
      if !rhat >= base then continue := false
    done;
    (* Multiply-subtract qhat * v from u[j .. j+n]. *)
    let borrow = ref 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let s = u.(j + i) - (p land base_mask) - !borrow in
      if s < 0 then begin
        u.(j + i) <- s + base;
        borrow := 1
      end else begin
        u.(j + i) <- s;
        borrow := 0
      end
    done;
    let s = u.(j + n) - !carry - !borrow in
    if s < 0 then begin
      (* qhat was one too large: add v back. *)
      u.(j + n) <- s + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let x = u.(j + i) + v.(i) + !c in
        u.(j + i) <- x land base_mask;
        c := x lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land base_mask
    end else u.(j + n) <- s;
    q.(j) <- !qhat
  done;
  let r = shr (Array.sub u 0 n) shift in
  (trim q, r)

(* Magnitude division dispatcher. *)
let divmod_mag u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | _ when compare_mag u v < 0 -> ([||], Array.copy u)
  | 1 ->
    let q, r = divmod_mag_digit u v.(0) in
    (trim q, if r = 0 then [||] else [| r |])
  | _ -> divmod_mag_knuth u v

(* Euclidean division: remainder in [0, |b|). *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = divmod_mag a.mag b.mag in
  let q0 = make (a.sign * b.sign) qm in
  let r0 = make a.sign rm in
  if r0.sign >= 0 then (q0, r0)
  else if b.sign > 0 then (pred q0, add r0 b)
  else (succ q0, sub r0 b)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let tdiv a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, _ = divmod_mag a.mag b.mag in
  make (a.sign * b.sign) qm

let equal x y = x.sign = y.sign && compare_mag x.mag y.mag = 0

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else x.sign * compare_mag x.mag y.mag

let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let hash x =
  Array.fold_left (fun h d -> (h * 1000003) lxor d) (x.sign + 17) x.mag

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
    else go acc (mul b b) (n lsr 1)
  in
  go one x n

let shift_left x s =
  if s < 0 then invalid_arg "Bigint.shift_left";
  if x.sign = 0 || s = 0 then x
  else begin
    let digit_shift = s / base_bits and bit_shift = s mod base_bits in
    let la = Array.length x.mag in
    let r = Array.make (la + digit_shift + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (x.mag.(i) lsl bit_shift) lor !carry in
      r.(i + digit_shift) <- v land base_mask;
      carry := v lsr base_bits
    done;
    r.(la + digit_shift) <- !carry;
    make x.sign r
  end

let shift_right x s =
  if s < 0 then invalid_arg "Bigint.shift_right";
  if x.sign = 0 || s = 0 then x
  else begin
    (* Arithmetic shift = floor division by 2^s. *)
    let q, r = divmod_mag x.mag (shift_left one s).mag in
    let q0 = make x.sign q in
    if x.sign < 0 && Array.length r > 0 then pred q0 else q0
  end

let to_int_opt x =
  (* A native int holds at most 63 bits: up to 3 digits with a bounded top. *)
  let n = Array.length x.mag in
  if n = 0 then Some 0
  else if n > 3 then None
  else begin
    let v =
      Array.to_list x.mag
      |> List.rev
      |> List.fold_left (fun acc d -> (acc * base) + d) 0
    in
    (* Overflow shows up as a sign flip or magnitude loss. *)
    if n = 3 && x.mag.(2) >= 4 then
      if x.sign < 0 && x.mag.(2) = 4 && x.mag.(1) = 0 && x.mag.(0) = 0 then
        Some min_int
      else None
    else if v < 0 then None
    else Some (x.sign * v)
  end

let to_int_exn x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: value out of int range"

let to_float x =
  let f =
    Array.to_list x.mag
    |> List.rev
    |> List.fold_left (fun acc d -> (acc *. float_of_int base) +. float_of_int d) 0.
  in
  if x.sign < 0 then -.f else f

let ten_pow9 = 1_000_000_000

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec chunks mag acc =
      if Array.length mag = 0 then acc
      else begin
        let q, r = divmod_mag_digit mag ten_pow9 in
        chunks (trim q) (r :: acc)
      end
    in
    (match chunks x.mag [] with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       if x.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let s = String.concat "" (String.split_on_char '_' s) in
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  let flush () =
    if !chunk_len > 0 then begin
      let scale = pow (of_int 10) !chunk_len in
      acc := add (mul !acc scale) (of_int !chunk);
      chunk := 0;
      chunk_len := 0
    end
  in
  String.iteri
    (fun i c ->
       if i >= start then begin
         match c with
         | '0' .. '9' ->
           chunk := (!chunk * 10) + (Char.code c - Char.code '0');
           incr chunk_len;
           if !chunk_len = 9 then flush ()
         | _ -> invalid_arg "Bigint.of_string: invalid character"
       end)
    s;
  flush ();
  if sign < 0 then neg !acc else !acc

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) x y = compare x y < 0
  let ( <= ) x y = compare x y <= 0
  let ( > ) x y = compare x y > 0
  let ( >= ) x y = compare x y >= 0
end

let pp fmt x = Format.pp_print_string fmt (to_string x)
