lib/numeric/q.mli: Bigint Format
