lib/numeric/q.ml: Bigint Format String
