(** TC27x address-space model.

    Address segments follow the TC27x layout: segment 0x7 holds the
    core-local scratchpads (no SRI traffic), segment 0x8 is cached program
    flash, 0xA its non-cached alias, 0x9/0xB the cached/non-cached LMU
    views, and the data flash sits in segment 0xAF (non-cacheable only).
    Cacheability is selected by the address segment used, exactly as system
    software does on the real part (paper, Section 2). *)

type region =
  | Dspr  (** core-local data scratchpad: no SRI traffic *)
  | Pspr  (** core-local program scratchpad: no SRI traffic *)
  | Sri of Platform.Target.t * bool  (** shared target, [true] = cacheable *)

val dspr_base : int
val dspr_size : int
val pspr_base : int
val pspr_size : int

val pf0_cached_base : int
val pf1_cached_base : int
val pf_bank_size : int
val pf0_uncached_base : int
val pf1_uncached_base : int

val lmu_cached_base : int
val lmu_uncached_base : int
val lmu_size : int

val dfl_base : int
val dfl_size : int

val classify : int -> region
(** @raise Invalid_argument for an unmapped address. *)

val classify_opt : int -> region option

val base_of : Platform.Target.t -> cacheable:bool -> int
(** Base address of a target's window with the requested cacheability.
    @raise Invalid_argument for cacheable dfl (no cached view exists). *)

val size_of : Platform.Target.t -> int
val line_bytes : int
(** SRI transfer granule: 32-byte lines (256-bit flash prefetch buffer /
    cache line). *)

val line_of : int -> int
(** Line-aligned address. *)

val pp_region : Format.formatter -> region -> unit
