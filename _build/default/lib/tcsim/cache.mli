(** Set-associative cache with true-LRU replacement and write-back,
    write-allocate policy.

    Models the TC1.6P instruction cache (16 KiB, 2-way) and data cache
    (8 KiB, 2-way), 32-byte lines. The simulator only needs hit/miss and
    victim information; no data contents are stored. *)

type geometry = { size_bytes : int; ways : int; line_bytes : int }

val tc16p_icache : geometry
(** 16 KiB, 2-way, 32-byte lines. *)

val tc16p_dcache : geometry
(** 8 KiB, 2-way, 32-byte lines. *)

val tc16e_icache : geometry
(** 8 KiB, 2-way, 32-byte lines (the 1.6E efficiency core). *)

type t

val create : geometry -> t
(** @raise Invalid_argument unless sizes are positive powers of two and
    [size_bytes] is divisible by [ways * line_bytes]. *)

type outcome =
  | Hit
  | Miss of { victim : int option }
      (** Allocated after a miss; [victim] is the line-aligned address of
          the evicted {e dirty} line, if the victim needed a write-back. *)

val access : t -> addr:int -> write:bool -> outcome
(** Looks up the line containing [addr]; on a miss the line is allocated
    (write-allocate) and the LRU way evicted. A write marks the line
    dirty. *)

val probe : t -> addr:int -> bool
(** Non-destructive lookup: would [addr] hit? *)

val flush : t -> unit
(** Invalidate everything (drops dirty lines; used between runs). *)

val geometry : t -> geometry
val hits : t -> int
val misses : t -> int
