lib/tcsim/program.mli:
