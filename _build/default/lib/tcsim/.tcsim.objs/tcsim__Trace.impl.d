lib/tcsim/trace.ml: Access_profile Buffer Format List Op Platform Printf Target
