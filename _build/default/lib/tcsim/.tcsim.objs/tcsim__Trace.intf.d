lib/tcsim/trace.mli: Access_profile Format Op Platform Target
