lib/tcsim/memory_map.ml: Format Platform Printf Target
