lib/tcsim/machine.mli: Access_profile Core_model Counters Latency Platform Program Trace
