lib/tcsim/cache.mli:
