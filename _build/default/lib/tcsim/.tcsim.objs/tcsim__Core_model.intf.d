lib/tcsim/core_model.mli: Cache Platform Program Sri
