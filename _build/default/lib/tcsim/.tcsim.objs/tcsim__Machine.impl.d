lib/tcsim/machine.ml: Access_profile Array Core_model Counters Hashtbl Latency List Platform Printf Program Sri Trace
