lib/tcsim/stats.mli: Format Machine Platform Target
