lib/tcsim/stats.ml: Access_profile Counters Format List Machine Platform Printf Target Trace
