lib/tcsim/memory_map.mli: Format Platform
