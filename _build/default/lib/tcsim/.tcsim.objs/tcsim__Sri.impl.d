lib/tcsim/sri.ml: Access_profile Array Latency List Memory_map Op Platform Printf Target Trace
