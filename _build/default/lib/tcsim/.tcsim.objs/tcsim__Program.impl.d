lib/tcsim/program.ml: Array List
