lib/tcsim/core_model.ml: Cache Counters Latency Memory_map Op Option Platform Printf Program Sri Target
