lib/tcsim/sri.mli: Access_profile Latency Op Platform Target Trace
