lib/tcsim/cache.ml: Array
