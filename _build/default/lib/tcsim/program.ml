type kind = Compute of int | Load of int | Store of int

type instr = { pc : int; kind : kind }
type item = I of instr | Loop of { count : int; body : item list }

(* Compiled form: loops flattened to arrays for a fast cursor. *)
type citem = CI of instr | CLoop of int * citem array

type t = { name : string; items : item list; compiled : citem array }

let rec compile items =
  items
  |> List.map (function
      | I i -> CI i
      | Loop { count; body } -> CLoop (count, compile body))
  |> Array.of_list

let rec validate items =
  List.iter
    (function
      | I { kind = Compute n; _ } when n < 1 ->
        invalid_arg "Program.make: Compute below 1 cycle"
      | I _ -> ()
      | Loop { count; body } ->
        if count < 0 then invalid_arg "Program.make: negative loop count";
        validate body)
    items

let make ~name items =
  validate items;
  { name; items; compiled = compile items }

let name p = p.name
let items p = p.items

let seq ~pc_base ?(pc_stride = 4) kinds =
  List.mapi (fun i k -> I { pc = pc_base + (i * pc_stride); kind = k }) kinds

let loop count body = Loop { count; body }

let static_size p =
  let rec go items =
    List.fold_left
      (fun acc -> function I _ -> acc + 1 | Loop { body; _ } -> acc + go body)
      0 items
  in
  go p.items

let dynamic_length p =
  let rec go items =
    List.fold_left
      (fun acc -> function
         | I _ -> acc + 1
         | Loop { count; body } -> acc + (count * go body))
      0 items
  in
  go p.items

let code_footprint p =
  let min_pc = ref max_int and max_pc = ref min_int in
  let rec go items =
    List.iter
      (function
        | I { pc; _ } ->
          if pc < !min_pc then min_pc := pc;
          if pc > !max_pc then max_pc := pc
        | Loop { body; _ } -> go body)
      items
  in
  go p.items;
  if !min_pc > !max_pc then [] else [ (!min_pc, !max_pc) ]

module Walker = struct
  type program = t

  type frame = { body : citem array; mutable idx : int; mutable remaining : int }
  (* [remaining] counts loop iterations left for this frame *)

  type t = {
    prog : program;
    mutable stack : frame list;
    mutable count : int;
  }

  let fresh_stack prog = [ { body = prog.compiled; idx = 0; remaining = 1 } ]
  let create prog = { prog; stack = fresh_stack prog; count = 0 }

  let reset w =
    w.stack <- fresh_stack w.prog;
    w.count <- 0

  let rec next w =
    match w.stack with
    | [] -> None
    | frame :: rest ->
      if frame.idx >= Array.length frame.body then begin
        frame.remaining <- frame.remaining - 1;
        if frame.remaining > 0 then begin
          frame.idx <- 0;
          next w
        end
        else begin
          w.stack <- rest;
          next w
        end
      end
      else begin
        let item = frame.body.(frame.idx) in
        frame.idx <- frame.idx + 1;
        match item with
        | CI i ->
          w.count <- w.count + 1;
          Some i
        | CLoop (count, body) ->
          if count = 0 || Array.length body = 0 then next w
          else begin
            w.stack <- { body; idx = 0; remaining = count } :: w.stack;
            next w
          end
      end

  let executed w = w.count
end
