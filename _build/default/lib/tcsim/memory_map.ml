open Platform

type region = Dspr | Pspr | Sri of Target.t * bool

let dspr_base = 0x7000_0000
let dspr_size = 120 * 1024
let pspr_base = 0x7010_0000
let pspr_size = 32 * 1024
let pf0_cached_base = 0x8000_0000
let pf1_cached_base = 0x8010_0000
let pf_bank_size = 1024 * 1024
let pf0_uncached_base = 0xA000_0000
let pf1_uncached_base = 0xA010_0000
let lmu_cached_base = 0x9000_0000
let lmu_uncached_base = 0xB000_0000
let lmu_size = 32 * 1024
let dfl_base = 0xAF00_0000
let dfl_size = 384 * 1024
let line_bytes = 32
let line_of addr = addr land lnot (line_bytes - 1)

let in_window addr base size = addr >= base && addr < base + size

let classify_opt addr =
  if in_window addr dspr_base dspr_size then Some Dspr
  else if in_window addr pspr_base pspr_size then Some Pspr
  else if in_window addr pf0_cached_base pf_bank_size then
    Some (Sri (Target.Pf0, true))
  else if in_window addr pf1_cached_base pf_bank_size then
    Some (Sri (Target.Pf1, true))
  else if in_window addr pf0_uncached_base pf_bank_size then
    Some (Sri (Target.Pf0, false))
  else if in_window addr pf1_uncached_base pf_bank_size then
    Some (Sri (Target.Pf1, false))
  else if in_window addr lmu_cached_base lmu_size then
    Some (Sri (Target.Lmu, true))
  else if in_window addr lmu_uncached_base lmu_size then
    Some (Sri (Target.Lmu, false))
  else if in_window addr dfl_base dfl_size then Some (Sri (Target.Dfl, false))
  else None

let classify addr =
  match classify_opt addr with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Memory_map.classify: 0x%x unmapped" addr)

let base_of target ~cacheable =
  match (target, cacheable) with
  | Target.Pf0, true -> pf0_cached_base
  | Target.Pf0, false -> pf0_uncached_base
  | Target.Pf1, true -> pf1_cached_base
  | Target.Pf1, false -> pf1_uncached_base
  | Target.Lmu, true -> lmu_cached_base
  | Target.Lmu, false -> lmu_uncached_base
  | Target.Dfl, false -> dfl_base
  | Target.Dfl, true ->
    invalid_arg "Memory_map.base_of: data flash has no cacheable view"

let size_of = function
  | Target.Pf0 | Target.Pf1 -> pf_bank_size
  | Target.Lmu -> lmu_size
  | Target.Dfl -> dfl_size

let pp_region fmt = function
  | Dspr -> Format.pp_print_string fmt "dspr"
  | Pspr -> Format.pp_print_string fmt "pspr"
  | Sri (t, c) ->
    Format.fprintf fmt "sri:%s%s" (Target.to_string t) (if c then "($)" else "(n$)")
