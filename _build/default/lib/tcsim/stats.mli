(** Execution statistics digests over simulation results.

    Summarises what the counters and (optionally) the transaction trace
    say about a run: how much of the execution was memory-interface
    stalling, how much traffic reached each SRI slave and how busy the
    slaves were — the characterisation data Section 4.2's workload
    discussion is based on. *)

open Platform

type t = {
  cycles : int;
  pmem_stall : int;
  dmem_stall : int;
  stall_fraction : float;  (** (PS + DS) / cycles *)
  sri_requests : int;  (** ground-truth SRI request count *)
  per_target : (Target.t * int) list;  (** requests per slave *)
  utilization : (Target.t * float) list;
      (** slave busy cycles / run cycles; all zero without a trace *)
}

val of_run : Machine.run_result -> t
val pp : Format.formatter -> t -> unit
