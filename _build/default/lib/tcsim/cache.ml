type geometry = { size_bytes : int; ways : int; line_bytes : int }

let tc16p_icache = { size_bytes = 16 * 1024; ways = 2; line_bytes = 32 }
let tc16p_dcache = { size_bytes = 8 * 1024; ways = 2; line_bytes = 32 }
let tc16e_icache = { size_bytes = 8 * 1024; ways = 2; line_bytes = 32 }

type line = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable stamp : int }

type t = {
  geom : geometry;
  sets : line array array;
  nsets : int;
  set_shift : int; (* log2 nsets *)
  mutable clock : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create geom =
  if not (is_pow2 geom.line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  if geom.ways < 1 || geom.size_bytes < 1 then invalid_arg "Cache.create: bad geometry";
  if geom.size_bytes mod (geom.ways * geom.line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by ways*line";
  let nsets = geom.size_bytes / (geom.ways * geom.line_bytes) in
  if not (is_pow2 nsets) then invalid_arg "Cache.create: set count must be a power of two";
  let sets =
    Array.init nsets (fun _ ->
        Array.init geom.ways (fun _ ->
            { tag = 0; valid = false; dirty = false; stamp = 0 }))
  in
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  {
    geom;
    sets;
    nsets;
    set_shift = log2 nsets 0;
    clock = 0;
    hit_count = 0;
    miss_count = 0;
  }

type outcome = Hit | Miss of { victim : int option }

let locate c addr =
  let line_addr = addr / c.geom.line_bytes in
  let set_idx = line_addr land (c.nsets - 1) in
  let tag = line_addr lsr c.set_shift in
  (set_idx, tag)

let access c ~addr ~write =
  c.clock <- c.clock + 1;
  let set_idx, tag = locate c addr in
  let set = c.sets.(set_idx) in
  let found = ref None in
  Array.iter
    (fun l -> if l.valid && l.tag = tag && !found = None then found := Some l)
    set;
  match !found with
  | Some l ->
    l.stamp <- c.clock;
    if write then l.dirty <- true;
    c.hit_count <- c.hit_count + 1;
    Hit
  | None ->
    c.miss_count <- c.miss_count + 1;
    (* choose victim: first invalid way, else least-recently used *)
    let victim_line = ref set.(0) in
    Array.iter
      (fun l ->
         let v = !victim_line in
         if not l.valid then begin
           if v.valid then victim_line := l
         end
         else if v.valid && l.stamp < v.stamp then victim_line := l)
      set;
    let v = !victim_line in
    let victim =
      if v.valid && v.dirty then begin
        (* reconstruct the victim's line-aligned address *)
        let line_addr = (v.tag * c.nsets) + set_idx in
        Some (line_addr * c.geom.line_bytes)
      end
      else None
    in
    v.tag <- tag;
    v.valid <- true;
    v.dirty <- write;
    v.stamp <- c.clock;
    Miss { victim }

let probe c ~addr =
  let set_idx, tag = locate c addr in
  Array.exists (fun l -> l.valid && l.tag = tag) c.sets.(set_idx)

let flush c =
  Array.iter
    (Array.iter (fun l ->
         l.valid <- false;
         l.dirty <- false;
         l.stamp <- 0))
    c.sets

let geometry c = c.geom
let hits c = c.hit_count
let misses c = c.miss_count
