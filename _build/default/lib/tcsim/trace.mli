(** SRI transaction traces: per-request observability the real TC27x does
    not offer, used to validate the contention models' per-request
    assumptions (each request of the task under analysis waits at most one
    service per same-priority contender) and to characterise workloads.

    Tracing is off by default; it is enabled per run and the buffer grows
    with the run, so reserve it for analysis-sized workloads. *)

open Platform

type event = {
  issue_cycle : int;  (** request enqueued on the SRI *)
  grant_cycle : int;  (** arbitration winner *)
  complete_cycle : int;  (** transaction done; [grant + service] *)
  core : int;
  target : Target.t;
  op : Op.t;
  service : int;  (** occupancy of the slave interface *)
  waited : int;  (** [grant_cycle - issue_cycle]: arbitration delay *)
}

type t = event list
(** In completion order. *)

val of_core : t -> int -> t
val of_target : t -> Target.t -> t
val count : t -> int
val max_wait : t -> int
(** 0 on an empty trace. *)

val total_wait : t -> int

val max_service : t -> int
(** 0 on an empty trace. *)

val busy_cycles : t -> Target.t -> int
(** Cycles the given slave interface spent serving traced transactions. *)

val profile : t -> core:int -> Access_profile.t
(** Reconstruction of the per-target access counts from the trace. *)

val pp_event : Format.formatter -> event -> unit
val pp_summary : Format.formatter -> t -> unit
val to_csv : t -> string
(** Header + one line per event (issue, grant, complete, core, target, op,
    service, waited). *)
