open Platform

type t = {
  cycles : int;
  pmem_stall : int;
  dmem_stall : int;
  stall_fraction : float;
  sri_requests : int;
  per_target : (Target.t * int) list;
  utilization : (Target.t * float) list;
}

let of_run (r : Machine.run_result) =
  let c = r.Machine.analysis.Machine.counters in
  let profile = r.Machine.analysis.Machine.profile in
  let cycles = r.Machine.cycles in
  {
    cycles;
    pmem_stall = c.Counters.pmem_stall;
    dmem_stall = c.Counters.dmem_stall;
    stall_fraction =
      (if cycles = 0 then 0.
       else
         float_of_int (c.Counters.pmem_stall + c.Counters.dmem_stall)
         /. float_of_int cycles);
    sri_requests = Access_profile.total profile;
    per_target =
      List.map (fun t -> (t, Access_profile.total_target profile t)) Target.all;
    utilization =
      List.map
        (fun t ->
           let busy = Trace.busy_cycles r.Machine.trace t in
           (t, if cycles = 0 then 0. else float_of_int busy /. float_of_int cycles))
        Target.all;
  }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>cycles %d, stalls %d+%d (%.1f%%), SRI requests %d@," s.cycles
    s.pmem_stall s.dmem_stall (100. *. s.stall_fraction) s.sri_requests;
  List.iter
    (fun (t, n) ->
       if n > 0 then begin
         let u = List.assoc t s.utilization in
         Format.fprintf fmt "  %-4s %7d requests%s@," (Target.to_string t) n
           (if u > 0. then Printf.sprintf ", %.1f%% busy" (100. *. u) else "")
       end)
    s.per_target;
  Format.fprintf fmt "@]"
