open Platform

type event = {
  issue_cycle : int;
  grant_cycle : int;
  complete_cycle : int;
  core : int;
  target : Target.t;
  op : Op.t;
  service : int;
  waited : int;
}

type t = event list

let of_core t core = List.filter (fun e -> e.core = core) t
let of_target t target = List.filter (fun e -> Target.equal e.target target) t
let count = List.length
let max_wait t = List.fold_left (fun acc e -> max acc e.waited) 0 t
let total_wait t = List.fold_left (fun acc e -> acc + e.waited) 0 t
let max_service t = List.fold_left (fun acc e -> max acc e.service) 0 t

let busy_cycles t target =
  List.fold_left (fun acc e -> acc + e.service) 0 (of_target t target)

let profile t ~core =
  List.fold_left
    (fun acc e -> Access_profile.incr acc e.target e.op)
    Access_profile.zero (of_core t core)

let pp_event fmt e =
  Format.fprintf fmt "@[cycle %d: core%d %s.%s wait=%d svc=%d done=%d@]"
    e.issue_cycle e.core (Target.to_string e.target) (Op.to_string e.op)
    e.waited e.service e.complete_cycle

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>%d transactions@," (count t);
  List.iter
    (fun target ->
       let per = of_target t target in
       if per <> [] then
         Format.fprintf fmt "  %-4s %6d txns, busy %7d cycles, max wait %4d@,"
           (Target.to_string target) (count per) (busy_cycles t target)
           (max_wait per))
    Target.all;
  Format.fprintf fmt "@]"

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "issue,grant,complete,core,target,op,service,waited\n";
  List.iter
    (fun e ->
       Buffer.add_string buf
         (Printf.sprintf "%d,%d,%d,%d,%s,%s,%d,%d\n" e.issue_cycle e.grant_cycle
            e.complete_cycle e.core (Target.to_string e.target)
            (Op.to_string e.op) e.service e.waited))
    t;
  Buffer.contents buf
