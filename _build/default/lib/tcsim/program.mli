(** Task programs: the abstract instruction stream a simulated core
    executes.

    A program is a static structure of instructions and counted loops; each
    instruction carries the code address it is fetched from, so instruction
    caches and flash prefetch buffers behave as they would for real code
    laid out at those addresses. Loop bodies keep their addresses across
    iterations, giving realistic temporal reuse. *)

type kind =
  | Compute of int  (** busy in the pipeline for [n >= 1] cycles *)
  | Load of int  (** data read at the address *)
  | Store of int  (** data write at the address *)

type instr = { pc : int; kind : kind }

type item = I of instr | Loop of { count : int; body : item list }

type t

val make : name:string -> item list -> t
(** @raise Invalid_argument on a negative loop count or on [Compute n]
    with [n < 1]. *)

val name : t -> string
val items : t -> item list

val seq : pc_base:int -> ?pc_stride:int -> kind list -> item list
(** Lays instruction kinds out at consecutive addresses starting at
    [pc_base] with the given stride (default 4 bytes). *)

val loop : int -> item list -> item
val static_size : t -> int
(** Number of instructions in the program text. *)

val dynamic_length : t -> int
(** Number of instructions executed (loops expanded). *)

val code_footprint : t -> (int * int) list
(** Minimal and maximal pc per contiguous usage; as [(min_pc, max_pc)]
    over all instructions — a single pair list for simple programs. *)

(** {1 Execution cursor} *)

module Walker : sig
  type program := t
  type t

  val create : program -> t
  val next : t -> instr option
  (** [None] once the program is exhausted. *)

  val reset : t -> unit
  val executed : t -> int
  (** Instructions returned since creation / last reset that returned
      [Some]. *)
end
