open Platform

let pp_table3 fmt () =
  let mark op c t = if Deployment.admissible op c t then "ok" else "x" in
  Format.fprintf fmt "@[<v>%-10s %-4s %-4s %-4s %-4s@," "" "pf0" "pf1" "dfl" "LMU";
  List.iter
    (fun (label, op, c) ->
       Format.fprintf fmt "%-10s %-4s %-4s %-4s %-4s@," label
         (mark op c Target.Pf0) (mark op c Target.Pf1) (mark op c Target.Dfl)
         (mark op c Target.Lmu))
    [
      ("Code $", Op.Code, Deployment.Cacheable);
      ("Code n$", Op.Code, Deployment.Non_cacheable);
      ("Data $", Op.Data, Deployment.Cacheable);
      ("Data n$", Op.Data, Deployment.Non_cacheable);
    ];
  Format.fprintf fmt "@]"

let pp_table4 fmt () =
  Format.fprintf fmt "@[<v>%-22s %-8s %-8s@," "Counter" "Task a" "Task b";
  List.iter
    (fun (counter, na, nb) -> Format.fprintf fmt "%-22s %-8s %-8s@," counter na nb)
    [
      ("PMEM_STALL", "PSa", "PSb");
      ("DMEM_STALL", "DSa", "DSb");
      ("P$_MISS", "PMa", "PMb");
      ("D$_MISS_CLEAN", "DMCa", "DMCb");
      ("D$_MISS_DIRTY", "DMDa", "DMDb");
    ];
  Format.fprintf fmt "@]"

let pp_table5 fmt () =
  List.iter
    (fun s -> Format.fprintf fmt "%a@," Scenario.pp s)
    [ Scenario.scenario1; Scenario.scenario2 ]
