(** The paper's static tables: deployment constraints (Table 3), the debug
    counters used (Table 4) and the per-scenario ILP tailoring (Table 5). *)

val pp_table3 : Format.formatter -> unit -> unit
(** Admissibility of cacheable/non-cacheable code and data per SRI slave. *)

val pp_table4 : Format.formatter -> unit -> unit
(** Counter inventory with the per-task notation of the paper. *)

val pp_table5 : Format.formatter -> unit -> unit
(** Tailoring constraints the ILP-PTAC model adds under each scenario. *)
