open Platform

let run ?config () = Mbta.Calibration.run ?config ()

let matches_reference results reference =
  List.for_all
    (fun (t, o, m) ->
       m.Mbta.Calibration.lmax = Latency.lmax reference t o
       && m.Mbta.Calibration.lmin = Latency.lmin reference t o
       && m.Mbta.Calibration.cs = Latency.min_stall reference t o)
    results

let pp = Mbta.Calibration.pp_table
