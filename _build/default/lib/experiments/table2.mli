(** Table 2 reproduction: maximum/minimum latencies and minimum stall
    cycles per (target, operation), measured with the calibration
    microbenchmarks on the simulated platform.

    The measured values must coincide with {!Platform.Latency.default} —
    the constants the analytical models consume — closing the
    model-vs-platform calibration loop. *)

open Platform

val run : ?config:Tcsim.Machine.config -> unit -> (Target.t * Op.t * Mbta.Calibration.measured) list

val matches_reference : (Target.t * Op.t * Mbta.Calibration.measured) list -> Latency.t -> bool
(** Every measured (lmax, lmin, cs) equals the reference table entry. *)

val pp : Format.formatter -> (Target.t * Op.t * Mbta.Calibration.measured) list -> unit
