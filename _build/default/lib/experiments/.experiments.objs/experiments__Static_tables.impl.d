lib/experiments/static_tables.ml: Deployment Format List Op Platform Scenario Target
