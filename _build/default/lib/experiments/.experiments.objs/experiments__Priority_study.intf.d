lib/experiments/priority_study.mli: Format Platform
