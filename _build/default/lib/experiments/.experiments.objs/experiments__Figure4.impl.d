lib/experiments/figure4.ml: Contention Counters Format List Mbta Platform Scenario Tcsim Workload
