lib/experiments/integration_study.mli: Format Schedule Tcsim
