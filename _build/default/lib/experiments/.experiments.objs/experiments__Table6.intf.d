lib/experiments/table6.mli: Format Platform Tcsim
