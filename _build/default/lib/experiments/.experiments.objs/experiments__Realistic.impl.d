lib/experiments/realistic.ml: Contention Figure4 Format Mbta Platform Scenario Tcsim Workload
