lib/experiments/table2.mli: Format Latency Mbta Op Platform Target Tcsim
