lib/experiments/realistic.mli: Format Mbta Tcsim
