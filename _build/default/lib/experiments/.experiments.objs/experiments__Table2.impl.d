lib/experiments/table2.ml: Latency List Mbta Platform
