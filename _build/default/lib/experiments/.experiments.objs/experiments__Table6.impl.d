lib/experiments/table6.ml: Format List Mbta Platform Workload
