lib/experiments/integration_study.ml: Platform Schedule Workload
