lib/experiments/portability.ml: Figure4 Format List Mbta Platform Table2 Tcsim Workload
