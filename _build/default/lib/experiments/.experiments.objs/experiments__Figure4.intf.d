lib/experiments/figure4.mli: Format Mbta Platform Tcsim Workload
