lib/experiments/portability.mli: Figure4 Format Platform
