lib/experiments/ablations.mli: Contention Format Platform Scenario Tcsim Workload
