lib/experiments/static_tables.mli: Format
