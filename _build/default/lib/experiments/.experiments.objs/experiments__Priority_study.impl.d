lib/experiments/priority_study.ml: Contention Format Latency Mbta Option Platform Scenario Tcsim Workload
