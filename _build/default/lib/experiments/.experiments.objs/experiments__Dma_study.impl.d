lib/experiments/dma_study.ml: Access_profile Array Contention Format Mbta Platform Scenario Tcsim Workload
