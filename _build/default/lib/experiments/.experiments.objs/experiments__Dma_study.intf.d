lib/experiments/dma_study.mli: Format Tcsim
