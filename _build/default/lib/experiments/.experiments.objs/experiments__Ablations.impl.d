lib/experiments/ablations.ml: Contention Format List Mbta Option Platform Scenario String Tcsim Workload
