type verdict = { task : Task.t; response : int option }
type t = { verdicts : verdict list; schedulable : bool }

let ceil_div a b = (a + b - 1) / b

(* Fixed-point iteration for one task given its higher-priority set. *)
let response_of task hp =
  let demand r =
    List.fold_left
      (fun acc (j : Task.t) -> acc + (ceil_div r j.Task.period * j.Task.wcet))
      task.Task.wcet hp
  in
  let rec iterate r =
    if r > task.Task.deadline then None
    else begin
      let r' = demand r in
      if r' = r then Some r else iterate r'
    end
  in
  iterate task.Task.wcet

let analyse tasks =
  let sorted = Task.by_priority tasks in
  let verdicts =
    List.mapi
      (fun i task ->
         let hp = List.filteri (fun j _ -> j < i) sorted in
         { task; response = response_of task hp })
      sorted
  in
  {
    verdicts;
    schedulable =
      List.for_all
        (fun v ->
           match v.response with
           | Some r -> r <= v.task.Task.deadline
           | None -> false)
        verdicts;
  }

let response_time tasks task =
  let r = analyse tasks in
  let v = List.find (fun v -> v.task.Task.name = task.Task.name) r.verdicts in
  v.response

let pp fmt t =
  Format.fprintf fmt "@[<v>%-14s %10s %10s %10s %s@," "task" "wcet" "deadline"
    "response" "ok";
  List.iter
    (fun v ->
       Format.fprintf fmt "%-14s %10d %10d %10s %s@," v.task.Task.name
         v.task.Task.wcet v.task.Task.deadline
         (match v.response with Some r -> string_of_int r | None -> "-")
         (match v.response with
          | Some r when r <= v.task.Task.deadline -> "yes"
          | _ -> "MISS"))
    t.verdicts;
  Format.fprintf fmt "schedulable: %b@]" t.schedulable
