lib/schedule/rta.ml: Format List Task
