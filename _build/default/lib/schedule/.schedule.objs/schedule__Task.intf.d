lib/schedule/task.mli: Format
