lib/schedule/task.ml: Format List Printf
