lib/schedule/integration.mli: Contention Format Platform Rta Scenario Tcsim
