lib/schedule/integration.ml: Contention Counters Format Hashtbl List Mbta Platform Printf Rta Scenario Task Tcsim
