lib/schedule/rta.mli: Format Task
