(** Periodic real-time tasks.

    The paper's integration setting (Section 1): OEMs hand software
    providers time budgets; each provider must show its tasks meet them.
    A task here is the schedulable unit an AUTOSAR runnable maps to:
    period, relative deadline, a WCET budget in cycles, and a fixed
    priority (lower number = more urgent, as usual in RTA literature). *)

type t = {
  name : string;
  period : int;  (** inter-arrival time, cycles *)
  deadline : int;  (** relative deadline, cycles; <= period here *)
  wcet : int;  (** execution budget, cycles *)
  priority : int;  (** fixed priority, lower = more urgent, unique per core *)
}

val make :
  name:string -> period:int -> ?deadline:int -> wcet:int -> priority:int -> unit -> t
(** [deadline] defaults to the period (implicit deadlines).
    @raise Invalid_argument on non-positive period/wcet, or a deadline
    outside (0, period]. *)

val with_wcet : t -> int -> t
(** Same task with a replaced WCET (e.g. contention-inflated). *)

val utilization : t -> float
val total_utilization : t list -> float

val by_priority : t list -> t list
(** Sorted most-urgent first.
    @raise Invalid_argument on duplicate priorities. *)

val pp : Format.formatter -> t -> unit
