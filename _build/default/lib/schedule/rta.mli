(** Response-time analysis for fixed-priority preemptive scheduling on one
    core (Joseph & Pandya / Audsley): the standard V&V step the paper's
    contention-aware WCETs feed into.

    The worst-case response time of task [i] is the least fixed point of

    [R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / T_j⌉ · C_j]

    computed by iteration from [R_i = C_i]; the task set is schedulable
    iff every response time exists and meets its deadline. *)

type verdict = {
  task : Task.t;
  response : int option;
      (** [None] when the iteration exceeds the deadline (unschedulable) *)
}

type t = {
  verdicts : verdict list;  (** most-urgent first *)
  schedulable : bool;
}

val analyse : Task.t list -> t
(** @raise Invalid_argument on duplicate priorities. *)

val response_time : Task.t list -> Task.t -> int option
(** Response time of one task within its task set (matched by name).
    @raise Not_found if the task is not in the set. *)

val pp : Format.formatter -> t -> unit
