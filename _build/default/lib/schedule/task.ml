type t = {
  name : string;
  period : int;
  deadline : int;
  wcet : int;
  priority : int;
}

let make ~name ~period ?deadline ~wcet ~priority () =
  let deadline = match deadline with Some d -> d | None -> period in
  if period <= 0 then invalid_arg "Task.make: non-positive period";
  if wcet <= 0 then invalid_arg "Task.make: non-positive wcet";
  if deadline <= 0 || deadline > period then
    invalid_arg "Task.make: deadline outside (0, period]";
  { name; period; deadline; wcet; priority }

let with_wcet t wcet =
  if wcet <= 0 then invalid_arg "Task.with_wcet: non-positive wcet";
  { t with wcet }

let utilization t = float_of_int t.wcet /. float_of_int t.period
let total_utilization ts = List.fold_left (fun acc t -> acc +. utilization t) 0. ts

let by_priority ts =
  let sorted = List.sort (fun a b -> compare a.priority b.priority) ts in
  let rec check = function
    | a :: (b :: _ as rest) ->
      if a.priority = b.priority then
        invalid_arg
          (Printf.sprintf "Task.by_priority: %s and %s share priority %d" a.name
             b.name a.priority);
      check rest
    | _ -> ()
  in
  check sorted;
  sorted

let pp fmt t =
  Format.fprintf fmt "%s(T=%d D=%d C=%d P=%d)" t.name t.period t.deadline t.wcet
    t.priority
