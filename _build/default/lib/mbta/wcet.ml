type t = {
  isolation_cycles : int;
  contention_cycles : int;
  wcet : int;
  ratio : float;
}

let make ~isolation_cycles ~contention_cycles =
  if isolation_cycles <= 0 then invalid_arg "Wcet.make: non-positive isolation time";
  if contention_cycles < 0 then invalid_arg "Wcet.make: negative contention";
  let wcet = isolation_cycles + contention_cycles in
  {
    isolation_cycles;
    contention_cycles;
    wcet;
    ratio = float_of_int wcet /. float_of_int isolation_cycles;
  }

let upper_bounds t ~observed_cycles = t.wcet >= observed_cycles

let pp fmt t =
  Format.fprintf fmt "isolation=%d +contention=%d wcet=%d (x%.2f)"
    t.isolation_cycles t.contention_cycles t.wcet t.ratio
