(** Upper bounds on SRI access counts from stall-cycle readings
    (paper Eqs. 2–4).

    The TC27x has no per-target SRI access counters, so the number of code
    and data requests is over-approximated by assuming every stall cycle
    was caused by the request type with the fewest stalls:
    [n̂ = ⌈stall / cs_min⌉]. *)

open Platform

type t = { n_co : int; n_da : int }
(** [n̂^{co}], [n̂^{da}] — upper bounds on code / data SRI requests. *)

val cs_co_min : Latency.t -> int
(** Eq. 2: minimum over the code-reachable targets (pf0, pf1, lmu). *)

val cs_da_min : Latency.t -> int
(** Eq. 3: minimum over all data-reachable targets. *)

val of_counters : Latency.t -> Counters.t -> t
(** Eq. 4, with the architectural target sets of Eqs. 2–3. *)

val of_counters_scenario : Latency.t -> Scenario.t -> Counters.t -> t
(** Eq. 4 with [cs_min] restricted to the targets the deployment scenario
    actually allows — tighter, still an over-approximation. *)

val sound_for : t -> Access_profile.t -> bool
(** Do the bounds dominate a ground-truth profile's per-op totals? Used by
    tests; a real platform cannot evaluate this. *)

val pp : Format.formatter -> t -> unit
