open Platform

type measured = { lmax : int; lmin : int; cs : int }

let cycles ?config p = (Measurement.isolation ?config p).Measurement.cycles

let stall_for op (c : Counters.t) =
  match op with
  | Op.Code -> c.Counters.pmem_stall
  | Op.Data -> c.Counters.dmem_stall

let measure_pair ?config target op =
  if not (Op.valid target op) then
    invalid_arg "Calibration.measure_pair: inadmissible pair";
  (* lmax: cold single access vs matched local baseline *)
  let probe, baseline = Workload.Microbench.single_probe ~target ~op () in
  let lmax = cycles ?config probe - cycles ?config baseline in
  (* lmin: access reusing the interface's line buffer *)
  let sprobe, sbaseline = Workload.Microbench.streaming_pair_probe ~target ~op () in
  let lmin = cycles ?config sprobe - cycles ?config sbaseline in
  (* cs: stall delta between 2n and n streaming accesses, per access *)
  let n = 64 in
  let stall k =
    let p = Workload.Microbench.repeated ~target ~op ~n:k () in
    stall_for op (Measurement.isolation ?config p).Measurement.counters
  in
  let cs = (stall (2 * n) - stall n) / n in
  { lmax; lmin; cs }

let run ?config () =
  List.map (fun (t, o) -> (t, o, measure_pair ?config t o)) Op.valid_pairs

let to_latency_table results ~lmu_dirty_lmax =
  Latency.make
    (List.map
       (fun (t, o, m) ->
          (t, o, { Latency.lmax = m.lmax; lmin = m.lmin; min_stall = m.cs }))
       results)
    ~lmu_dirty_lmax

let find results t o =
  List.find_map
    (fun (t', o', m) -> if Target.equal t t' && Op.equal o o' then Some m else None)
    results

let pp_table fmt results =
  (* Paper layout: one column for lmu, one for pf (pf0 = pf1), one dfl. *)
  let get t o = find results t o in
  let cell f t o =
    match get t o with Some m -> string_of_int (f m) | None -> "-"
  in
  Format.fprintf fmt "@[<v>Target (t)     lmu   pf    dfl@,";
  Format.fprintf fmt "lmax (co)      %-5s %-5s %s@," (cell (fun m -> m.lmax) Target.Lmu Op.Code)
    (cell (fun m -> m.lmax) Target.Pf0 Op.Code)
    (cell (fun m -> m.lmax) Target.Dfl Op.Code);
  Format.fprintf fmt "lmax (da)      %-5s %-5s %s@," (cell (fun m -> m.lmax) Target.Lmu Op.Data)
    (cell (fun m -> m.lmax) Target.Pf0 Op.Data)
    (cell (fun m -> m.lmax) Target.Dfl Op.Data);
  Format.fprintf fmt "lmin (co)      %-5s %-5s %s@," (cell (fun m -> m.lmin) Target.Lmu Op.Code)
    (cell (fun m -> m.lmin) Target.Pf0 Op.Code)
    (cell (fun m -> m.lmin) Target.Dfl Op.Code);
  Format.fprintf fmt "lmin (da)      %-5s %-5s %s@," (cell (fun m -> m.lmin) Target.Lmu Op.Data)
    (cell (fun m -> m.lmin) Target.Pf0 Op.Data)
    (cell (fun m -> m.lmin) Target.Dfl Op.Data);
  Format.fprintf fmt "cs   (co)      %-5s %-5s %s@," (cell (fun m -> m.cs) Target.Lmu Op.Code)
    (cell (fun m -> m.cs) Target.Pf0 Op.Code)
    (cell (fun m -> m.cs) Target.Dfl Op.Code);
  Format.fprintf fmt "cs   (da)      %-5s %-5s %s@]" (cell (fun m -> m.cs) Target.Lmu Op.Data)
    (cell (fun m -> m.cs) Target.Pf0 Op.Data)
    (cell (fun m -> m.cs) Target.Dfl Op.Data)
