lib/mbta/calibration.mli: Format Latency Op Platform Target Tcsim
