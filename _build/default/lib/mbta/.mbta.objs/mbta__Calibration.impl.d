lib/mbta/calibration.ml: Counters Format Latency List Measurement Op Platform Target Workload
