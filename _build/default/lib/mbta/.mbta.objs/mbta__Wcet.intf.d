lib/mbta/wcet.mli: Format
