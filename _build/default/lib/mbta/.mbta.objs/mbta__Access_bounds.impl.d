lib/mbta/access_bounds.ml: Access_profile Counters Format Latency List Op Platform Scenario
