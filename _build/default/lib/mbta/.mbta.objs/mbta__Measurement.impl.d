lib/mbta/measurement.ml: Access_profile Counters List Platform Tcsim
