lib/mbta/access_bounds.mli: Access_profile Counters Format Latency Platform Scenario
