lib/mbta/wcet.ml: Format
