lib/mbta/measurement.mli: Access_profile Counters Platform Tcsim
