open Platform

type t = { n_co : int; n_da : int }

let cs_co_min lat = Latency.cs_min lat Op.Code
let cs_da_min lat = Latency.cs_min lat Op.Data

let ceil_div a b =
  if b <= 0 then invalid_arg "Access_bounds: non-positive divisor";
  (a + b - 1) / b

let of_counters lat (c : Counters.t) =
  {
    n_co = ceil_div c.Counters.pmem_stall (cs_co_min lat);
    n_da = ceil_div c.Counters.dmem_stall (cs_da_min lat);
  }

let scenario_cs_min lat scenario op =
  let allowed =
    Scenario.allowed_pairs scenario
    |> List.filter (fun (_, o) -> Op.equal o op)
    |> List.map (fun (t, o) -> Latency.min_stall lat t o)
  in
  match allowed with
  | [] -> None (* the scenario generates no such traffic at all *)
  | l -> Some (List.fold_left min max_int l)

let of_counters_scenario lat scenario (c : Counters.t) =
  let bound stall op fallback =
    match scenario_cs_min lat scenario op with
    | Some cs -> ceil_div stall cs
    | None ->
      (* no admissible target: any observed stall must be zero, but fall
         back to the architectural bound rather than claim impossibility *)
      if stall = 0 then 0 else ceil_div stall fallback
  in
  {
    n_co = bound c.Counters.pmem_stall Op.Code (cs_co_min lat);
    n_da = bound c.Counters.dmem_stall Op.Data (cs_da_min lat);
  }

let sound_for b profile =
  b.n_co >= Access_profile.total_op profile Op.Code
  && b.n_da >= Access_profile.total_op profile Op.Data

let pp fmt b = Format.fprintf fmt "{ n_co <= %d; n_da <= %d }" b.n_co b.n_da
