(** Measuring the Table 2 constants on the (simulated) platform, the way
    the authors did on silicon (Section 3.3): single-access probes for the
    maximum latency, streaming probes for the minimum latency, and repeated
    streaming access batches for the best-case stall per request.

    The result regenerates Table 2 and is verified by tests against the
    {!Platform.Latency.default} constants the models use — closing the loop
    between the simulated hardware and the analytical model. *)

open Platform

type measured = { lmax : int; lmin : int; cs : int }

val measure_pair :
  ?config:Tcsim.Machine.config -> Target.t -> Op.t -> measured
(** Calibrate one (target, op) pair.
    @raise Invalid_argument for (dfl, code). *)

val run : ?config:Tcsim.Machine.config -> unit -> (Target.t * Op.t * measured) list
(** Calibrate every admissible pair, in {!Platform.Op.valid_pairs} order. *)

val to_latency_table : (Target.t * Op.t * measured) list -> lmu_dirty_lmax:int -> Latency.t
(** Package measurements as a {!Platform.Latency} table (the dirty LMU
    latency cannot be derived from clean microbenchmarks and is supplied by
    the caller, as in the paper's bracketed entry). *)

val pp_table : Format.formatter -> (Target.t * Op.t * measured) list -> unit
(** Render in the layout of the paper's Table 2. *)
