(** Contention-aware WCET estimate assembly.

    MBTA produces an execution-time bound in isolation; a contention model
    contributes [Δcont], the worst-case extra cycles contenders can
    inflict. The deliverable is their sum, reported against the isolation
    time as the paper's Figure 4 does. *)

type t = {
  isolation_cycles : int;
  contention_cycles : int;
  wcet : int;  (** [isolation_cycles + contention_cycles] *)
  ratio : float;  (** [wcet / isolation_cycles] *)
}

val make : isolation_cycles:int -> contention_cycles:int -> t
(** @raise Invalid_argument on non-positive isolation time or negative
    contention. *)

val upper_bounds : t -> observed_cycles:int -> bool
(** Does this estimate cover an observed (multicore) execution time? *)

val pp : Format.formatter -> t -> unit
