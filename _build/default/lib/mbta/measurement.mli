(** The measurement protocol of measurement-based timing analysis:
    run a task in isolation through the DSU-style counters (paper
    Section 4.2, "Metrics"): the analysis consumes only
    {!Platform.Counters} readings and the observed execution time.

    The ground-truth SRI profile is also captured — the real DSU cannot
    produce it (that is the paper's core problem), so the models must never
    consume it; tests use it to check the models' over-approximation. *)

open Platform

type observation = {
  counters : Counters.t;
  cycles : int;
  ground_truth : Access_profile.t;
      (** for validation only — not available from a real DSU *)
}

val isolation :
  ?config:Tcsim.Machine.config -> ?core:int -> Tcsim.Program.t -> observation
(** Run the task alone and read its counters (core defaults to 0). *)

val corun :
  ?config:Tcsim.Machine.config ->
  analysis:Tcsim.Program.t * int ->
  contenders:(Tcsim.Program.t * int) list ->
  ?restart_contenders:bool ->
  unit ->
  observation
(** Observed multicore execution of the analysis task (program, core)
    against contenders; used to check that model predictions upper-bound
    reality. By default contenders do {e not} restart: each contender's
    isolation readings then soundly cover everything it did during the
    run. *)

val isolation_sweep :
  ?config:Tcsim.Machine.config -> ?core:int -> Tcsim.Program.t list -> observation list
(** One isolation run per program variant — MBTA practice runs the task
    under several input vectors / paths and keeps the worst readings. *)

val high_water_mark : observation list -> observation
(** Pointwise maximum over a sweep: per-counter maxima, maximal execution
    time and the per-pair maxima of the ground-truth profiles. Feeding the
    contention models with per-counter maxima is the standard conservative
    MBTA composition: every model input dominates each observed run.
    @raise Invalid_argument on an empty list. *)
