examples/system_integration.mli:
