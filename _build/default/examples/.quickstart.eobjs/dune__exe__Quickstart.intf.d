examples/quickstart.mli:
