examples/quickstart.ml: Contention Counters Format Latency List Mbta Memory_map Platform Program Scenario Tcsim
