examples/calibration.ml: Contention Experiments Format Latency Mbta Platform Workload
