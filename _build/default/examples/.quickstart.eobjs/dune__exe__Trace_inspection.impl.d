examples/trace_inspection.ml: Format Latency List Op Platform String Target Tcsim Workload
