examples/calibration.mli:
