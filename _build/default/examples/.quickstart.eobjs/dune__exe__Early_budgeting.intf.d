examples/early_budgeting.mli:
