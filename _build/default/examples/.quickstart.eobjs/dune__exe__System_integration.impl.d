examples/system_integration.ml: Experiments Format List Schedule
