examples/early_budgeting.ml: Contention Experiments Format Latency List Mbta Platform Scenario Workload
