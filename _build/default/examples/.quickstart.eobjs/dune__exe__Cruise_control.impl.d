examples/cruise_control.ml: Counters Experiments Format List Mbta Platform Scenario Workload
