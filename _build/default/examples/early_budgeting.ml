(* Early-phase budgeting: the OEM / software-provider workflow the paper
   motivates (Section 1).

     dune exec examples/early_budgeting.exe

   A software provider must guarantee its application fits a time budget
   before integration, without knowing the final co-runners. The paper's
   models support exactly this exploration:

   - the fTC estimate is the contract that holds against ANY contender;
   - ILP-PTAC estimates, fed with candidate contender profiles (e.g. the
     loads other suppliers declared), show how much budget each candidate
     integration scenario really needs — before any joint execution. *)

open Platform

let () =
  let budget_cycles = 2_000_000 in
  let scenario = Scenario.scenario1 in
  let variant = Workload.Control_loop.variant_of_scenario scenario in
  let app = Workload.Control_loop.app variant in
  let iso = Mbta.Measurement.isolation ~core:0 app in
  let a = iso.Mbta.Measurement.counters in
  let latency = Latency.default in
  let iso_cycles = iso.Mbta.Measurement.cycles in

  Format.printf "application (deployment %s): %d cycles in isolation@."
    scenario.Scenario.name iso_cycles;
  Format.printf "integration budget: %d cycles@.@." budget_cycles;

  (* The any-contender contract. *)
  let ftc = Contention.Ftc.contention_bound ~latency ~a () in
  let ftc_wcet =
    Mbta.Wcet.make ~isolation_cycles:iso_cycles
      ~contention_cycles:ftc.Contention.Ftc.delta
  in
  Format.printf "fTC (any contender):        %a -> %s@." Mbta.Wcet.pp ftc_wcet
    (if ftc_wcet.Mbta.Wcet.wcet <= budget_cycles then "FITS" else "OVER BUDGET");

  (* Candidate integrations: profiles declared by other suppliers. *)
  Format.printf "@.candidate co-runner integrations (ILP-PTAC):@.";
  List.iter
    (fun level ->
       let con = Workload.Load_gen.make ~variant ~level () in
       let b = (Mbta.Measurement.isolation ~core:1 con).Mbta.Measurement.counters in
       let r =
         Contention.Ilp_ptac.contention_bound_exn ~latency ~scenario ~a ~b ()
       in
       let w =
         Mbta.Wcet.make ~isolation_cycles:iso_cycles
           ~contention_cycles:r.Contention.Ilp_ptac.delta
       in
       Format.printf "  with %-8s %a -> %s@."
         (Workload.Load_gen.level_to_string level)
         Mbta.Wcet.pp w
         (if w.Mbta.Wcet.wcet <= budget_cycles then "FITS" else "OVER BUDGET"))
    Workload.Load_gen.all_levels;

  (* Two-supplier integration on the third core. *)
  Format.printf "@.three-party integration (M-Load + L-Load on cores 1 and 2):@.";
  let r = Experiments.Ablations.a3_multi_contender scenario in
  (match r.Experiments.Ablations.bound with
   | Some delta ->
     let w = Mbta.Wcet.make ~isolation_cycles:iso_cycles ~contention_cycles:delta in
     Format.printf "  %a -> %s@." Mbta.Wcet.pp w
       (if w.Mbta.Wcet.wcet <= budget_cycles then "FITS" else "OVER BUDGET")
   | None -> Format.printf "  model infeasible@.");

  Format.printf
    "@.The provider can sign off budgets per integration scenario at design@.\
     time; only the fTC contract is needed when co-runners are unknown.@."
