(* Platform calibration: measuring the Table 2 constants with
   microbenchmarks, then feeding the measured table into a model.

     dune exec examples/calibration.exe

   Porting the contention model to a new TriCore derivative (Section 4.3)
   starts exactly here: run known-traffic microbenchmarks against each SRI
   slave, extract maximum latencies and best-case stalls per request, and
   rebuild the model's latency table from measurements. *)

open Platform

let () =
  Format.printf "calibrating every (target, operation) pair...@.@.";
  let results = Mbta.Calibration.run () in
  Format.printf "%a@.@." Mbta.Calibration.pp_table results;

  (* Rebuild the model's timing table purely from the measurements (the
     dirty LMU latency comes from the write-back microbenchmark of the
     vendor docs; we pass the reference value). *)
  let measured_table =
    Mbta.Calibration.to_latency_table results
      ~lmu_dirty_lmax:(Latency.lmu_dirty_lmax Latency.default)
  in
  Format.printf "reconstructed latency table:@.%a@.@." Latency.pp measured_table;

  (* Use the measured table end to end: the derived access bounds and fTC
     estimate match the ones computed from the reference constants. *)
  let app = Workload.Control_loop.app Workload.Control_loop.S1 in
  let obs = Mbta.Measurement.isolation app in
  let bounds_ref =
    Mbta.Access_bounds.of_counters Latency.default obs.Mbta.Measurement.counters
  in
  let bounds_measured =
    Mbta.Access_bounds.of_counters measured_table obs.Mbta.Measurement.counters
  in
  Format.printf "access bounds (reference constants): %a@." Mbta.Access_bounds.pp
    bounds_ref;
  Format.printf "access bounds (measured constants):  %a@." Mbta.Access_bounds.pp
    bounds_measured;
  let ftc latency =
    (Contention.Ftc.contention_bound ~latency ~a:obs.Mbta.Measurement.counters ())
      .Contention.Ftc.delta
  in
  Format.printf "fTC delta (reference): %d@." (ftc Latency.default);
  Format.printf "fTC delta (measured):  %d@." (ftc measured_table);
  Format.printf "@.calibration agrees with the reference constants: %b@."
    (Experiments.Table2.matches_reference results Latency.default)
