(* The paper's evaluation workload end to end: the cruise-control-style
   application under both deployment scenarios, stressed by the H/M/L-Load
   co-runners.

     dune exec examples/cruise_control.exe

   For each scenario the example (1) collects isolation readings for
   application and contenders, (2) derives the fTC and ILP-PTAC WCET
   estimates, and (3) validates them against an actual co-run — i.e. it
   recomputes Figure 4 while narrating the steps. *)

open Platform

let describe_scenario (s : Scenario.t) =
  Format.printf "@.==============================================@.";
  Format.printf "%a@." Scenario.pp s

let () =
  List.iter
    (fun scenario ->
       describe_scenario scenario;
       let variant = Workload.Control_loop.variant_of_scenario scenario in
       let app = Workload.Control_loop.app variant in
       let iso = Mbta.Measurement.isolation ~core:0 app in
       Format.printf "application in isolation: %d cycles@."
         iso.Mbta.Measurement.cycles;
       Format.printf "%a@.@." Counters.pp iso.Mbta.Measurement.counters;
       List.iter
         (fun level ->
            let row = Experiments.Figure4.run_row ~scenario ~load:level () in
            Format.printf
              "%-8s fTC x%.2f | ILP-PTAC x%.2f | observed x%.2f | %s@."
              (Workload.Load_gen.level_to_string level)
              row.Experiments.Figure4.ftc.Mbta.Wcet.ratio
              row.Experiments.Figure4.ilp.Mbta.Wcet.ratio
              (float_of_int row.Experiments.Figure4.observed_cycles
               /. float_of_int row.Experiments.Figure4.isolation_cycles)
              (if Experiments.Figure4.sound row then "sound"
               else "VIOLATION"))
         Workload.Load_gen.all_levels)
    [ Scenario.scenario1; Scenario.scenario2 ];
  Format.printf
    "@.Reading: fTC is load-blind and pessimistic; ILP-PTAC adapts to the@.\
     contender's measured traffic while still covering every observation.@."
