(* System-level integration: from isolation measurements to a
   schedulability verdict.

     dune exec examples/system_integration.exe

   The paper's industrial setting (Section 1): an OEM integrates software
   from several providers onto one TC27x; timing must be signed off before
   joint execution is possible. This example builds a three-task two-core
   system, measures every task in isolation, inflates WCETs with each
   contention model and runs per-core response-time analysis — showing
   that the tighter ILP-PTAC bound is what makes the integration provable. *)

let () =
  let r = Experiments.Integration_study.run () in
  Format.printf "%a@.@." Experiments.Integration_study.pp r;

  (* response-time details under each inflation *)
  List.iter
    (fun (label, rtas) ->
       Format.printf "--- %s ---@." label;
       List.iter
         (fun (core, rta) ->
            Format.printf "core %d:@.%a@." core Schedule.Rta.pp rta)
         rtas)
    [
      ("ignoring contention", r.Schedule.Integration.isolation_rta);
      ("fTC inflation", r.Schedule.Integration.ftc_rta);
      ("ILP-PTAC inflation", r.Schedule.Integration.ilp_rta);
    ];

  Format.printf
    "@.The fTC bound must assume the worst co-runner on every access and@.\
     rejects the system; the ILP-PTAC bound, consuming only the other@.\
     cores' isolation counter envelopes, proves it schedulable.@."
