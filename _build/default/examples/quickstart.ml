(* Quickstart: bound the contention a task can suffer, from isolation
   measurements only.

     dune exec examples/quickstart.exe

   The flow is the paper's: write (here: generate) a task, run it alone on
   the platform while reading the DSU counters, then ask the models how
   much a co-runner could slow it down — without ever co-running it. *)

open Platform
open Tcsim

let () =
  (* 1. A small task: some code in flash (cacheable), a loop of reads over
     a shared buffer in the LMU (non-cacheable). *)
  let code =
    List.init 64 (fun i ->
        Program.I
          {
            Program.pc = Memory_map.pf0_cached_base + (i * 32);
            kind = Program.Compute 2;
          })
  in
  let reads =
    List.init 32 (fun i ->
        Program.I
          {
            Program.pc = Memory_map.pspr_base + (4 * i);
            kind = Program.Load (Memory_map.lmu_uncached_base + (4 * i));
          })
  in
  let task = Program.make ~name:"quickstart" [ Program.loop 20 (code @ reads) ] in

  (* 2. Run it in isolation and read the debug counters (Table 4). *)
  let obs = Mbta.Measurement.isolation task in
  Format.printf "--- isolation run ---@.";
  Format.printf "execution time: %d cycles@." obs.Mbta.Measurement.cycles;
  Format.printf "%a@.@." Counters.pp obs.Mbta.Measurement.counters;

  (* 3. The fully time-composable bound: valid against ANY contender. *)
  let latency = Latency.default in
  let ftc =
    Contention.Ftc.contention_bound ~latency ~a:obs.Mbta.Measurement.counters ()
  in
  Format.printf "--- fTC bound (any contender) ---@.%a@.@." Contention.Ftc.pp ftc;

  (* 4. The ILP-PTAC bound against a specific contender's isolation
     readings: here a synthetic co-runner measured the same way. *)
  let contender =
    Program.make ~name:"neighbour"
      [
        Program.loop 500
          [
            Program.I
              {
                Program.pc = Memory_map.pspr_base;
                kind = Program.Load (Memory_map.lmu_uncached_base + 0x2000);
              };
          ];
      ]
  in
  let obs_b = Mbta.Measurement.isolation ~core:1 contender in
  let result =
    Contention.Ilp_ptac.contention_bound_exn ~latency
      ~scenario:Scenario.unrestricted ~a:obs.Mbta.Measurement.counters
      ~b:obs_b.Mbta.Measurement.counters ()
  in
  Format.printf "--- ILP-PTAC bound (against the measured neighbour) ---@.%a@.@."
    Contention.Ilp_ptac.pp_result result;

  (* 5. WCET estimates: isolation time plus each contention bound. *)
  let iso = obs.Mbta.Measurement.cycles in
  Format.printf "--- WCET estimates ---@.";
  Format.printf "fTC:      %a@." Mbta.Wcet.pp
    (Mbta.Wcet.make ~isolation_cycles:iso ~contention_cycles:ftc.Contention.Ftc.delta);
  Format.printf "ILP-PTAC: %a@." Mbta.Wcet.pp
    (Mbta.Wcet.make ~isolation_cycles:iso
       ~contention_cycles:result.Contention.Ilp_ptac.delta);

  (* 6. Sanity: co-run them for real; both estimates must cover it. *)
  let co = Mbta.Measurement.corun ~analysis:(task, 0) ~contenders:[ (contender, 1) ] () in
  Format.printf "@.observed co-run: %d cycles (isolation + %d)@."
    co.Mbta.Measurement.cycles
    (co.Mbta.Measurement.cycles - iso)
