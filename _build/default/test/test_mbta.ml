(* Tests for the MBTA layer: access-count bounding (Eqs. 2-4), the
   calibration harness (Table 2 regeneration) and WCET assembly. *)

open Platform

let lat = Latency.default

(* --- access bounds --------------------------------------------------------- *)

let counters ?(ps = 0) ?(ds = 0) ?(pm = 0) ?(dmc = 0) ?(dmd = 0) () =
  {
    Counters.ccnt = ps + ds + 1000;
    pmem_stall = ps;
    dmem_stall = ds;
    pcache_miss = pm;
    dcache_miss_clean = dmc;
    dcache_miss_dirty = dmd;
  }

let test_cs_minima () =
  (* Eq. 2: min(cs_pf0_co, cs_pf1_co, cs_lmu_co) = min(6, 6, 11) = 6
     Eq. 3: min(cs_pf_da, cs_lmu_da, cs_dfl_da) = min(11, 10, 42) = 10 *)
  Alcotest.(check int) "cs_co_min" 6 (Mbta.Access_bounds.cs_co_min lat);
  Alcotest.(check int) "cs_da_min" 10 (Mbta.Access_bounds.cs_da_min lat)

let test_ceiling_bound () =
  (* Eq. 4 uses ceilings *)
  let b = Mbta.Access_bounds.of_counters lat (counters ~ps:100 ~ds:100 ()) in
  Alcotest.(check int) "ceil(100/6)" 17 b.Mbta.Access_bounds.n_co;
  Alcotest.(check int) "ceil(100/10)" 10 b.Mbta.Access_bounds.n_da;
  let z = Mbta.Access_bounds.of_counters lat (counters ()) in
  Alcotest.(check int) "zero stalls, zero accesses (co)" 0 z.Mbta.Access_bounds.n_co;
  Alcotest.(check int) "zero stalls, zero accesses (da)" 0 z.Mbta.Access_bounds.n_da

let test_scenario_bound_tighter () =
  (* Scenario 1 allows data only on the LMU, whose cs (10) equals the
     architectural minimum, but code still only on pf: same cs. Scenario
     restriction must never loosen the bound. *)
  let c = counters ~ps:1000 ~ds:1000 () in
  let arch = Mbta.Access_bounds.of_counters lat c in
  List.iter
    (fun s ->
       let sc = Mbta.Access_bounds.of_counters_scenario lat s c in
       Alcotest.(check bool) (s.Scenario.name ^ " co not looser") true
         (sc.Mbta.Access_bounds.n_co <= arch.Mbta.Access_bounds.n_co);
       Alcotest.(check bool) (s.Scenario.name ^ " da not looser") true
         (sc.Mbta.Access_bounds.n_da <= arch.Mbta.Access_bounds.n_da))
    Scenario.all

let test_bounds_sound_on_workloads () =
  (* The paper's key measurement-side assumption: stall-derived access
     bounds dominate ground truth. Checked across apps and contenders. *)
  let check name (o : Mbta.Measurement.observation) scenario =
    let b = Mbta.Access_bounds.of_counters lat o.Mbta.Measurement.counters in
    Alcotest.(check bool) (name ^ " architectural bound sound") true
      (Mbta.Access_bounds.sound_for b o.Mbta.Measurement.ground_truth);
    let bs = Mbta.Access_bounds.of_counters_scenario lat scenario o.Mbta.Measurement.counters in
    Alcotest.(check bool) (name ^ " scenario bound sound") true
      (Mbta.Access_bounds.sound_for bs o.Mbta.Measurement.ground_truth)
  in
  List.iter
    (fun (variant, scenario) ->
       check
         (scenario.Scenario.name ^ " app")
         (Mbta.Measurement.isolation (Workload.Control_loop.app variant))
         scenario;
       List.iter
         (fun level ->
            check
              (Printf.sprintf "%s %s" scenario.Scenario.name
                 (Workload.Load_gen.level_to_string level))
              (Mbta.Measurement.isolation ~core:1
                 (Workload.Load_gen.make ~variant ~level ()))
              scenario)
         Workload.Load_gen.all_levels)
    [
      (Workload.Control_loop.S1, Scenario.scenario1);
      (Workload.Control_loop.S2, Scenario.scenario2);
    ]

(* --- calibration ------------------------------------------------------------- *)

let test_calibration_matches_table2 () =
  let results = Mbta.Calibration.run () in
  List.iter
    (fun (t, o, m) ->
       let name = Printf.sprintf "(%s,%s)" (Target.to_string t) (Op.to_string o) in
       Alcotest.(check int) (name ^ " lmax") (Latency.lmax lat t o) m.Mbta.Calibration.lmax;
       Alcotest.(check int) (name ^ " lmin") (Latency.lmin lat t o) m.Mbta.Calibration.lmin;
       Alcotest.(check int) (name ^ " cs") (Latency.min_stall lat t o) m.Mbta.Calibration.cs)
    results

let test_calibration_roundtrip () =
  let table =
    Mbta.Calibration.to_latency_table (Mbta.Calibration.run ())
      ~lmu_dirty_lmax:(Latency.lmu_dirty_lmax lat)
  in
  List.iter
    (fun (t, o) ->
       Alcotest.(check int) "lmax roundtrip" (Latency.lmax lat t o) (Latency.lmax table t o);
       Alcotest.(check int) "cs roundtrip" (Latency.min_stall lat t o)
         (Latency.min_stall table t o))
    Op.valid_pairs

(* --- wcet ---------------------------------------------------------------------- *)

let test_wcet_assembly () =
  let w = Mbta.Wcet.make ~isolation_cycles:1000 ~contention_cycles:500 in
  Alcotest.(check int) "wcet" 1500 w.Mbta.Wcet.wcet;
  Alcotest.(check (float 1e-9)) "ratio" 1.5 w.Mbta.Wcet.ratio;
  Alcotest.(check bool) "covers smaller" true (Mbta.Wcet.upper_bounds w ~observed_cycles:1400);
  Alcotest.(check bool) "misses larger" false (Mbta.Wcet.upper_bounds w ~observed_cycles:1501)

let test_wcet_validation () =
  Alcotest.check_raises "zero isolation"
    (Invalid_argument "Wcet.make: non-positive isolation time") (fun () ->
        ignore (Mbta.Wcet.make ~isolation_cycles:0 ~contention_cycles:1));
  Alcotest.check_raises "negative contention"
    (Invalid_argument "Wcet.make: negative contention") (fun () ->
        ignore (Mbta.Wcet.make ~isolation_cycles:1 ~contention_cycles:(-1)))

(* --- measurement ----------------------------------------------------------------- *)

let test_corun_slower_than_isolation () =
  let variant = Workload.Control_loop.S1 in
  let app = Workload.Control_loop.app variant in
  let con = Workload.Load_gen.make ~variant ~level:Workload.Load_gen.High () in
  let iso = Mbta.Measurement.isolation app in
  let co = Mbta.Measurement.corun ~analysis:(app, 0) ~contenders:[ (con, 1) ] () in
  Alcotest.(check bool) "contention slows the app" true
    (co.Mbta.Measurement.cycles > iso.Mbta.Measurement.cycles);
  (* the analysis task's own counter signature is unchanged by co-running
     except for stalls *)
  Alcotest.(check int) "same PM under contention"
    iso.Mbta.Measurement.counters.Counters.pcache_miss
    co.Mbta.Measurement.counters.Counters.pcache_miss;
  Alcotest.(check bool) "more stalls under contention" true
    (co.Mbta.Measurement.counters.Counters.dmem_stall
     >= iso.Mbta.Measurement.counters.Counters.dmem_stall)

let test_sweep_and_high_water_mark () =
  let variants =
    Workload.Control_loop.app_input_variants Workload.Control_loop.S1 ~n:4
  in
  Alcotest.(check int) "4 variants" 4 (List.length variants);
  let sweep = Mbta.Measurement.isolation_sweep variants in
  let hwm = Mbta.Measurement.high_water_mark sweep in
  (* the mark dominates every run, pointwise *)
  List.iter
    (fun (o : Mbta.Measurement.observation) ->
       Alcotest.(check bool) "cycles dominated" true
         (hwm.Mbta.Measurement.cycles >= o.Mbta.Measurement.cycles);
       Alcotest.(check bool) "ps dominated" true
         (hwm.Mbta.Measurement.counters.Counters.pmem_stall
          >= o.Mbta.Measurement.counters.Counters.pmem_stall);
       Alcotest.(check bool) "ds dominated" true
         (hwm.Mbta.Measurement.counters.Counters.dmem_stall
          >= o.Mbta.Measurement.counters.Counters.dmem_stall);
       Alcotest.(check bool) "ground truth dominated" true
         (Access_profile.dominates hwm.Mbta.Measurement.ground_truth
            o.Mbta.Measurement.ground_truth))
    sweep;
  (* estimates from the mark dominate estimates from any single run *)
  let ftc_of (c : Counters.t) =
    (Contention.Ftc.contention_bound ~latency:lat ~a:c ()).Contention.Ftc.delta
  in
  List.iter
    (fun (o : Mbta.Measurement.observation) ->
       Alcotest.(check bool) "hwm fTC dominates per-run fTC" true
         (ftc_of hwm.Mbta.Measurement.counters >= ftc_of o.Mbta.Measurement.counters))
    sweep;
  (* the input variants genuinely differ *)
  let cycles = List.map (fun o -> o.Mbta.Measurement.cycles) sweep in
  Alcotest.(check bool) "variants differ" true
    (List.exists (fun c -> c <> List.hd cycles) (List.tl cycles))

let test_high_water_mark_empty () =
  Alcotest.check_raises "empty sweep"
    (Invalid_argument "Measurement.high_water_mark: empty sweep") (fun () ->
        ignore (Mbta.Measurement.high_water_mark []))

let test_isolation_deterministic () =
  let app = Workload.Control_loop.app Workload.Control_loop.S1 in
  let a = Mbta.Measurement.isolation app and b = Mbta.Measurement.isolation app in
  Alcotest.(check int) "same cycles" a.Mbta.Measurement.cycles b.Mbta.Measurement.cycles;
  Alcotest.(check bool) "same counters" true
    (Counters.equal a.Mbta.Measurement.counters b.Mbta.Measurement.counters)

let () =
  Alcotest.run "mbta"
    [
      ( "access-bounds",
        [
          Alcotest.test_case "cs minima (Eqs. 2-3)" `Quick test_cs_minima;
          Alcotest.test_case "ceiling bound (Eq. 4)" `Quick test_ceiling_bound;
          Alcotest.test_case "scenario restriction tighter" `Quick test_scenario_bound_tighter;
          Alcotest.test_case "sound on all workloads" `Slow test_bounds_sound_on_workloads;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "matches Table 2" `Quick test_calibration_matches_table2;
          Alcotest.test_case "latency-table roundtrip" `Quick test_calibration_roundtrip;
        ] );
      ( "wcet",
        [
          Alcotest.test_case "assembly" `Quick test_wcet_assembly;
          Alcotest.test_case "validation" `Quick test_wcet_validation;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "corun slower" `Quick test_corun_slower_than_isolation;
          Alcotest.test_case "deterministic" `Quick test_isolation_deterministic;
          Alcotest.test_case "sweep + high-water mark" `Quick test_sweep_and_high_water_mark;
          Alcotest.test_case "hwm empty rejected" `Quick test_high_water_mark_empty;
        ] );
    ]
