(* Tests for the static platform model: target/op algebra, the Table 2
   latency table and its derived quantities (Eqs. 2-3, 6-7), the Table 3
   deployment matrix, scenario definitions (Fig. 3 / Table 5 inputs),
   access profiles and counters. *)

open Platform

let lat = Latency.default

(* --- targets and operations -------------------------------------------------- *)

let test_target_sets () =
  Alcotest.(check int) "4 targets" 4 (List.length Target.all);
  Alcotest.(check int) "3 code targets" 3 (List.length Target.code_targets);
  Alcotest.(check int) "4 data targets" 4 (List.length Target.data_targets);
  Alcotest.(check bool) "dfl not code-reachable" false
    (List.mem Target.Dfl Target.code_targets)

let test_target_string_roundtrip () =
  List.iter
    (fun t ->
       Alcotest.(check bool) "roundtrip" true
         (Target.of_string (Target.to_string t) = Some t))
    Target.all;
  Alcotest.(check bool) "unknown" true (Target.of_string "rom" = None)

let test_valid_pairs () =
  Alcotest.(check int) "7 admissible pairs" 7 (List.length Op.valid_pairs);
  Alcotest.(check bool) "(dfl, code) inadmissible" false (Op.valid Target.Dfl Op.Code);
  List.iter
    (fun t -> Alcotest.(check bool) "data everywhere" true (Op.valid t Op.Data))
    Target.all

(* --- latency table ------------------------------------------------------------ *)

let test_table2_constants () =
  let check t o (lmax, lmin, cs) =
    Alcotest.(check int) "lmax" lmax (Latency.lmax lat t o);
    Alcotest.(check int) "lmin" lmin (Latency.lmin lat t o);
    Alcotest.(check int) "cs" cs (Latency.min_stall lat t o)
  in
  check Target.Lmu Op.Code (11, 11, 11);
  check Target.Lmu Op.Data (11, 11, 10);
  check Target.Pf0 Op.Code (16, 12, 6);
  check Target.Pf1 Op.Data (16, 12, 11);
  check Target.Dfl Op.Data (43, 43, 42);
  Alcotest.(check int) "dirty lmu" 21 (Latency.lmu_dirty_lmax lat)

let test_latency_derived () =
  (* Eqs. 2-3 *)
  Alcotest.(check int) "cs_co_min" 6 (Latency.cs_min lat Op.Code);
  Alcotest.(check int) "cs_da_min" 10 (Latency.cs_min lat Op.Data);
  (* Eqs. 6-7 *)
  Alcotest.(check int) "l_co_max" 16 (Latency.worst_latency lat Op.Code);
  Alcotest.(check int) "l_da_max" 43 (Latency.worst_latency lat Op.Data);
  Alcotest.(check int) "l_co_max dirty" 21 (Latency.worst_latency ~dirty:true lat Op.Code);
  Alcotest.(check int) "lmax_op dirty applies to lmu data only" 21
    (Latency.lmax_op ~dirty:true lat Target.Lmu Op.Data);
  Alcotest.(check int) "lmax_op dirty leaves pf alone" 16
    (Latency.lmax_op ~dirty:true lat Target.Pf0 Op.Data)

let test_latency_validation () =
  let entry lmax lmin min_stall = { Latency.lmax; lmin; min_stall } in
  let base =
    [
      (Target.Lmu, Op.Code, entry 11 11 11);
      (Target.Lmu, Op.Data, entry 11 11 10);
      (Target.Pf0, Op.Code, entry 16 12 6);
      (Target.Pf0, Op.Data, entry 16 12 11);
      (Target.Pf1, Op.Code, entry 16 12 6);
      (Target.Pf1, Op.Data, entry 16 12 11);
      (Target.Dfl, Op.Data, entry 43 43 42);
    ]
  in
  ignore (Latency.make base ~lmu_dirty_lmax:21);
  let expect_invalid entries =
    try
      ignore (Latency.make entries ~lmu_dirty_lmax:21);
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  (* missing pair *)
  expect_invalid (List.tl base);
  (* duplicate pair *)
  expect_invalid (List.hd base :: base);
  (* cs > lmin *)
  expect_invalid
    ((Target.Lmu, Op.Code, entry 11 11 12) :: List.tl base);
  (* lmin > lmax *)
  expect_invalid
    ((Target.Lmu, Op.Code, entry 11 12 11) :: List.tl base);
  (* code to dfl *)
  expect_invalid ((Target.Dfl, Op.Code, entry 43 43 42) :: base)

(* --- deployment (Table 3) ------------------------------------------------------ *)

let test_table3_matrix () =
  let open Deployment in
  (* exactly the paper's matrix *)
  let expect = function
    | Op.Code, _, Target.Dfl -> false
    | Op.Code, _, _ -> true
    | Op.Data, Cacheable, Target.Dfl -> false
    | Op.Data, Cacheable, _ -> true
    | Op.Data, Non_cacheable, (Target.Dfl | Target.Lmu) -> true
    | Op.Data, Non_cacheable, (Target.Pf0 | Target.Pf1) -> false
  in
  List.iter
    (fun op ->
       List.iter
         (fun c ->
            List.iter
              (fun t ->
                 Alcotest.(check bool)
                   (Printf.sprintf "%s/%s/%s" (Op.to_string op)
                      (match c with Cacheable -> "$" | Non_cacheable -> "n$")
                      (Target.to_string t))
                   (expect (op, c, t))
                   (admissible op c t))
              Target.all)
         [ Cacheable; Non_cacheable ])
    Op.all

let test_deployment_validation () =
  let bad =
    Deployment.make ~name:"bad"
      [
        {
          Deployment.kind = Op.Data;
          place = Deployment.Shared (Target.Pf0, Deployment.Non_cacheable);
          label = "illegal";
        };
      ]
  in
  (match bad with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "non-cacheable data on pf must be rejected");
  (try
     ignore
       (Deployment.make_exn ~name:"bad"
          [
            {
              Deployment.kind = Op.Code;
              place = Deployment.Shared (Target.Dfl, Deployment.Cacheable);
              label = "illegal";
            };
          ]);
     Alcotest.fail "code on dfl must be rejected"
   with Invalid_argument _ -> ())

let test_deployment_queries () =
  let d = Scenario.scenario1.Scenario.deployment in
  Alcotest.(check bool) "code counted by PM" true
    (Deployment.code_counted_by_pcache_miss d);
  let pairs = Deployment.sri_pairs d in
  Alcotest.(check bool) "pf0 code present" true
    (List.exists (fun (t, o) -> t = Target.Pf0 && o = Op.Code) pairs);
  Alcotest.(check bool) "no dfl traffic" false
    (List.exists (fun (t, _) -> t = Target.Dfl) pairs)

(* --- scenarios ------------------------------------------------------------------ *)

let test_scenario_zero_pairs () =
  let z1 = Scenario.zero_pairs Scenario.scenario1 in
  Alcotest.(check int) "sc1 zeroes 4 pairs" 4 (List.length z1);
  let z2 = Scenario.zero_pairs Scenario.scenario2 in
  Alcotest.(check int) "sc2 zeroes 2 pairs" 2 (List.length z2);
  Alcotest.(check int) "unrestricted zeroes none" 0
    (List.length (Scenario.zero_pairs Scenario.unrestricted))

let test_scenario_allowed_pairs () =
  let allowed = Scenario.allowed_pairs Scenario.scenario1 in
  Alcotest.(check int) "sc1 allows 3 pairs" 3 (List.length allowed);
  Alcotest.(check int) "unrestricted allows all 7" 7
    (List.length (Scenario.allowed_pairs Scenario.unrestricted))

let test_scenario_find () =
  Alcotest.(check bool) "find scenario2" true
    (match Scenario.find "scenario2" with Some s -> s.Scenario.name = "scenario2" | None -> false);
  Alcotest.(check bool) "unknown" true (Scenario.find "nope" = None)

(* --- variants -------------------------------------------------------------------- *)

let test_variants_wellformed () =
  List.iter
    (fun (v : Variants.t) ->
       (* constructing the table already validated the cs<=lmin<=lmax
          relations; sanity-check a few invariants across variants *)
       List.iter
         (fun (t, o) ->
            Alcotest.(check bool)
              (v.Variants.name ^ " cs >= 1")
              true
              (Latency.min_stall v.Variants.latency t o >= 1))
         Op.valid_pairs)
    Variants.all;
  Alcotest.(check bool) "tc277 is the reference" true
    (Latency.lmax Variants.tc277.Variants.latency Target.Pf0 Op.Code
     = Latency.lmax Latency.default Target.Pf0 Op.Code);
  Alcotest.(check bool) "find works" true
    (Variants.find "tc27x-slow-flash" <> None);
  Alcotest.(check bool) "unknown variant" true (Variants.find "tc999" = None)

(* --- access profiles --------------------------------------------------------------- *)

let test_profile_basics () =
  let p =
    Access_profile.make
      [ ((Target.Pf0, Op.Code), 5); ((Target.Lmu, Op.Data), 3); ((Target.Pf0, Op.Code), 2) ]
  in
  Alcotest.(check int) "summed duplicates" 7 (Access_profile.get p Target.Pf0 Op.Code);
  Alcotest.(check int) "total" 10 (Access_profile.total p);
  Alcotest.(check int) "total code" 7 (Access_profile.total_op p Op.Code);
  Alcotest.(check int) "total lmu" 3 (Access_profile.total_target p Target.Lmu);
  Alcotest.(check bool) "dominates itself" true (Access_profile.dominates p p);
  let bigger = Access_profile.incr p Target.Dfl Op.Data in
  Alcotest.(check bool) "bigger dominates" true (Access_profile.dominates bigger p);
  Alcotest.(check bool) "smaller does not" false (Access_profile.dominates p bigger)

let test_profile_validation () =
  (try
     ignore (Access_profile.make [ ((Target.Dfl, Op.Code), 1) ]);
     Alcotest.fail "inadmissible pair must be rejected"
   with Invalid_argument _ -> ());
  (try
     ignore (Access_profile.make [ ((Target.Lmu, Op.Data), -1) ]);
     Alcotest.fail "negative count must be rejected"
   with Invalid_argument _ -> ())

let test_profile_stall_cycles () =
  let p = Access_profile.make [ ((Target.Pf0, Op.Code), 10); ((Target.Lmu, Op.Data), 4) ] in
  Alcotest.(check int) "code stalls 10*6" 60 (Access_profile.stall_cycles lat p Op.Code);
  Alcotest.(check int) "data stalls 4*10" 40 (Access_profile.stall_cycles lat p Op.Data)

(* --- counters --------------------------------------------------------------------- *)

let test_counters_algebra () =
  let a =
    {
      Counters.ccnt = 100;
      pmem_stall = 10;
      dmem_stall = 20;
      pcache_miss = 3;
      dcache_miss_clean = 2;
      dcache_miss_dirty = 1;
    }
  in
  let two = Counters.add a a in
  Alcotest.(check int) "add ccnt" 200 two.Counters.ccnt;
  Alcotest.(check bool) "sub roundtrip" true (Counters.equal a (Counters.sub two a));
  Alcotest.(check bool) "valid" true (Counters.is_valid a);
  Alcotest.(check bool) "stalls beyond ccnt invalid" false
    (Counters.is_valid { a with Counters.pmem_stall = 200 })

let () =
  Alcotest.run "platform"
    [
      ( "targets-ops",
        [
          Alcotest.test_case "target sets" `Quick test_target_sets;
          Alcotest.test_case "string roundtrip" `Quick test_target_string_roundtrip;
          Alcotest.test_case "valid pairs" `Quick test_valid_pairs;
        ] );
      ( "latency",
        [
          Alcotest.test_case "Table 2 constants" `Quick test_table2_constants;
          Alcotest.test_case "derived quantities" `Quick test_latency_derived;
          Alcotest.test_case "validation" `Quick test_latency_validation;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "Table 3 matrix" `Quick test_table3_matrix;
          Alcotest.test_case "validation" `Quick test_deployment_validation;
          Alcotest.test_case "queries" `Quick test_deployment_queries;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "zero pairs" `Quick test_scenario_zero_pairs;
          Alcotest.test_case "allowed pairs" `Quick test_scenario_allowed_pairs;
          Alcotest.test_case "find" `Quick test_scenario_find;
        ] );
      ( "variants",
        [ Alcotest.test_case "well-formed" `Quick test_variants_wellformed ] );
      ( "access-profile",
        [
          Alcotest.test_case "basics" `Quick test_profile_basics;
          Alcotest.test_case "validation" `Quick test_profile_validation;
          Alcotest.test_case "stall synthesis" `Quick test_profile_stall_cycles;
        ] );
      ( "counters",
        [ Alcotest.test_case "algebra" `Quick test_counters_algebra ] );
    ]
