(* Tests for the scheduling layer: task validation, textbook
   response-time analysis, and the contention-aware integration study. *)

let task = Schedule.Task.make

(* --- tasks ------------------------------------------------------------------- *)

let test_task_validation () =
  let expect_invalid f =
    try
      ignore (f ());
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid (fun () -> task ~name:"t" ~period:0 ~wcet:1 ~priority:1 ());
  expect_invalid (fun () -> task ~name:"t" ~period:10 ~wcet:0 ~priority:1 ());
  expect_invalid (fun () -> task ~name:"t" ~period:10 ~deadline:11 ~wcet:1 ~priority:1 ());
  expect_invalid (fun () -> task ~name:"t" ~period:10 ~deadline:0 ~wcet:1 ~priority:1 ());
  expect_invalid (fun () ->
      ignore (Schedule.Task.with_wcet (task ~name:"t" ~period:10 ~wcet:1 ~priority:1 ()) 0))

let test_task_utilization () =
  let t1 = task ~name:"a" ~period:10 ~wcet:2 ~priority:1 () in
  let t2 = task ~name:"b" ~period:20 ~wcet:5 ~priority:2 () in
  Alcotest.(check (float 1e-9)) "u(a)" 0.2 (Schedule.Task.utilization t1);
  Alcotest.(check (float 1e-9)) "total" 0.45 (Schedule.Task.total_utilization [ t1; t2 ])

let test_task_priority_order () =
  let t1 = task ~name:"a" ~period:10 ~wcet:1 ~priority:3 () in
  let t2 = task ~name:"b" ~period:10 ~wcet:1 ~priority:1 () in
  (match Schedule.Task.by_priority [ t1; t2 ] with
   | [ first; _ ] -> Alcotest.(check string) "most urgent first" "b" first.Schedule.Task.name
   | _ -> Alcotest.fail "two tasks expected");
  let dup = task ~name:"c" ~period:10 ~wcet:1 ~priority:3 () in
  (try
     ignore (Schedule.Task.by_priority [ t1; dup ]);
     Alcotest.fail "duplicate priorities must be rejected"
   with Invalid_argument _ -> ())

(* --- response-time analysis ----------------------------------------------------- *)

let classic_set =
  (* Textbook example: C/T = 3/10, 3/15, 5/30.
     R1 = 3; R2 = 3 + 3 = 6; R3 = 5 + 2*3 + 1*3 = 14. *)
  [
    task ~name:"t1" ~period:10 ~wcet:3 ~priority:1 ();
    task ~name:"t2" ~period:15 ~wcet:3 ~priority:2 ();
    task ~name:"t3" ~period:30 ~wcet:5 ~priority:3 ();
  ]

let test_rta_textbook () =
  let r = Schedule.Rta.analyse classic_set in
  Alcotest.(check bool) "schedulable" true r.Schedule.Rta.schedulable;
  let resp name =
    let v =
      List.find (fun v -> v.Schedule.Rta.task.Schedule.Task.name = name) r.Schedule.Rta.verdicts
    in
    v.Schedule.Rta.response
  in
  Alcotest.(check (option int)) "R1" (Some 3) (resp "t1");
  Alcotest.(check (option int)) "R2" (Some 6) (resp "t2");
  Alcotest.(check (option int)) "R3" (Some 14) (resp "t3")

let test_rta_unschedulable () =
  let tasks =
    [
      task ~name:"hog" ~period:10 ~wcet:8 ~priority:1 ();
      task ~name:"victim" ~period:20 ~wcet:5 ~priority:2 ();
    ]
  in
  let r = Schedule.Rta.analyse tasks in
  Alcotest.(check bool) "not schedulable" false r.Schedule.Rta.schedulable;
  Alcotest.(check (option int)) "victim misses"
    None
    (Schedule.Rta.response_time tasks (List.nth tasks 1))

let test_rta_deadline_constrained () =
  (* same set as classic but t3's deadline tightened below its response *)
  let tasks =
    [
      task ~name:"t1" ~period:10 ~wcet:3 ~priority:1 ();
      task ~name:"t2" ~period:15 ~wcet:3 ~priority:2 ();
      task ~name:"t3" ~period:30 ~deadline:13 ~wcet:5 ~priority:3 ();
    ]
  in
  let r = Schedule.Rta.analyse tasks in
  Alcotest.(check bool) "deadline miss detected" false r.Schedule.Rta.schedulable

let test_rta_single_task () =
  let r = Schedule.Rta.analyse [ task ~name:"solo" ~period:100 ~wcet:40 ~priority:1 () ] in
  Alcotest.(check bool) "solo schedulable" true r.Schedule.Rta.schedulable;
  (match r.Schedule.Rta.verdicts with
   | [ v ] -> Alcotest.(check (option int)) "R = C" (Some 40) v.Schedule.Rta.response
   | _ -> Alcotest.fail "one verdict expected")

let test_rta_exact_fit () =
  (* two tasks exactly saturating the deadline *)
  let tasks =
    [
      task ~name:"a" ~period:4 ~wcet:2 ~priority:1 ();
      task ~name:"b" ~period:8 ~wcet:4 ~priority:2 ();
    ]
  in
  (* R_b: 4 + ceil(R/4)*2: R=4+2=6 -> ceil(6/4)=2 -> 4+4=8 -> ceil(8/4)=2 -> 8. *)
  Alcotest.(check (option int)) "boundary response" (Some 8)
    (Schedule.Rta.response_time tasks (List.nth tasks 1));
  Alcotest.(check bool) "fits exactly" true
    (Schedule.Rta.analyse tasks).Schedule.Rta.schedulable

(* --- integration ------------------------------------------------------------------ *)

let study = lazy (Experiments.Integration_study.run ())

let test_integration_verdicts () =
  let r = Lazy.force study in
  Alcotest.(check bool) "schedulable ignoring contention" true
    (Schedule.Integration.schedulable_under r `Isolation);
  Alcotest.(check bool) "fTC inflation rejects" false
    (Schedule.Integration.schedulable_under r `Ftc);
  Alcotest.(check bool) "ILP-PTAC inflation accepts" true
    (Schedule.Integration.schedulable_under r `Ilp)

let test_integration_inflations_ordered () =
  let r = Lazy.force study in
  List.iter
    (fun i ->
       Alcotest.(check bool) "iso <= ilp" true
         (i.Schedule.Integration.isolation_cycles <= i.Schedule.Integration.ilp_wcet);
       Alcotest.(check bool) "ilp <= ftc" true
         (i.Schedule.Integration.ilp_wcet <= i.Schedule.Integration.ftc_wcet))
    r.Schedule.Integration.inflations

let test_integration_validation () =
  let p = Workload.Engine_control.task () in
  let app priority core =
    {
      Schedule.Integration.name = "x";
      program = p;
      period = 1_000_000;
      deadline = None;
      priority;
      core;
    }
  in
  (try
     ignore
       (Schedule.Integration.integrate ~scenario:Platform.Scenario.scenario1
          [ app 1 0; app 1 0 ]);
     Alcotest.fail "duplicate (core, priority) must be rejected"
   with Invalid_argument _ -> ());
  (try
     ignore (Schedule.Integration.integrate ~scenario:Platform.Scenario.scenario1 []);
     Alcotest.fail "empty system must be rejected"
   with Invalid_argument _ -> ())

let test_integration_single_core_no_inflation () =
  (* with every task on one core there is no SRI contention to add *)
  let p = Workload.Engine_control.task () in
  let r =
    Schedule.Integration.integrate ~scenario:Platform.Scenario.scenario1
      [
        {
          Schedule.Integration.name = "only";
          program = p;
          period = 4_000_000;
          deadline = None;
          priority = 1;
          core = 0;
        };
      ]
  in
  (match r.Schedule.Integration.inflations with
   | [ i ] ->
     Alcotest.(check int) "ftc = isolation" i.Schedule.Integration.isolation_cycles
       i.Schedule.Integration.ftc_wcet;
     Alcotest.(check int) "ilp = isolation" i.Schedule.Integration.isolation_cycles
       i.Schedule.Integration.ilp_wcet
   | _ -> Alcotest.fail "one inflation expected")

let () =
  Alcotest.run "schedule"
    [
      ( "tasks",
        [
          Alcotest.test_case "validation" `Quick test_task_validation;
          Alcotest.test_case "utilization" `Quick test_task_utilization;
          Alcotest.test_case "priority order" `Quick test_task_priority_order;
        ] );
      ( "rta",
        [
          Alcotest.test_case "textbook responses" `Quick test_rta_textbook;
          Alcotest.test_case "unschedulable" `Quick test_rta_unschedulable;
          Alcotest.test_case "deadline constrained" `Quick test_rta_deadline_constrained;
          Alcotest.test_case "single task" `Quick test_rta_single_task;
          Alcotest.test_case "exact fit" `Quick test_rta_exact_fit;
        ] );
      ( "integration",
        [
          Alcotest.test_case "paper verdicts" `Slow test_integration_verdicts;
          Alcotest.test_case "inflation ordering" `Slow test_integration_inflations_ordered;
          Alcotest.test_case "validation" `Quick test_integration_validation;
          Alcotest.test_case "single core" `Quick test_integration_single_core_no_inflation;
        ] );
    ]
