test/test_ilp.ml: Alcotest Array Ilp List Numeric Printf Q QCheck QCheck_alcotest String
