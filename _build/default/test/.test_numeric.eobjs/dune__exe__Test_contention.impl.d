test/test_contention.ml: Access_profile Alcotest Contention Counters Ilp Latency List Mbta Memory_map Op Option Platform Printf Program QCheck QCheck_alcotest Scenario String Target Tcsim Workload
