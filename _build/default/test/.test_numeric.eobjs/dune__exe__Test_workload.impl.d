test/test_workload.ml: Access_profile Alcotest Control_loop Counters Dma Engine_control Experiments Latency List Load_gen Mbta Microbench Op Platform Printf Rng Scenario Target Workload
