test/test_experiments.ml: Alcotest Contention Counters Experiments Format Latency Lazy List Mbta Platform Printf Scenario String Workload
