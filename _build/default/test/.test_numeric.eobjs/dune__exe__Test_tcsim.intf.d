test/test_tcsim.mli:
