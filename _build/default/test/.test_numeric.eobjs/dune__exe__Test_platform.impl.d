test/test_platform.ml: Access_profile Alcotest Counters Deployment Latency List Op Platform Printf Scenario Target Variants
