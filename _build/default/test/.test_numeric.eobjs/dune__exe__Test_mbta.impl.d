test/test_mbta.ml: Access_profile Alcotest Contention Counters Latency List Mbta Op Platform Printf Scenario Target Workload
