test/test_numeric.ml: Alcotest Bigint List Numeric Printf Q QCheck QCheck_alcotest
