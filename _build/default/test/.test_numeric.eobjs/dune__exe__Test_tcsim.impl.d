test/test_tcsim.ml: Access_profile Alcotest Cache Counters Format Latency List Machine Memory_map Op Platform Printf Program QCheck QCheck_alcotest Sri Stats String Target Tcsim Trace
