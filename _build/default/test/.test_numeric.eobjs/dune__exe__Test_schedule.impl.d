test/test_schedule.ml: Alcotest Experiments Lazy List Platform Schedule Workload
