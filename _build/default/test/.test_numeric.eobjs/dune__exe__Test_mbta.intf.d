test/test_mbta.mli:
