(* Tests for the contention models: hand-computed instances of the ideal
   (Eq. 1), fTC (Eqs. 4, 6-8) and ILP-PTAC (Eqs. 9-23) models, white-box
   checks on the generated ILP, and property tests on randomly generated
   task pairs where the simulator provides the ground truth the bounds
   must dominate. *)

open Platform

let lat = Latency.default

let counters ?(ps = 0) ?(ds = 0) ?(pm = 0) ?(dmc = 0) ?(dmd = 0) () =
  {
    Counters.ccnt = ps + ds + 1000;
    pmem_stall = ps;
    dmem_stall = ds;
    pcache_miss = pm;
    dcache_miss_clean = dmc;
    dcache_miss_dirty = dmd;
  }

let profile l = Access_profile.make l

(* --- ideal model (Eq. 1) ----------------------------------------------------- *)

let test_ideal_hand_computed () =
  (* a: 10 code to pf0, 5 data to lmu; b: 3 code to pf0, 9 data to lmu
     delta = min(10,3)*16 + min(5,9)*11 = 48 + 55 = 103 *)
  let a = profile [ ((Target.Pf0, Op.Code), 10); ((Target.Lmu, Op.Data), 5) ] in
  let b = profile [ ((Target.Pf0, Op.Code), 3); ((Target.Lmu, Op.Data), 9) ] in
  Alcotest.(check int) "eq1" 103 (Contention.Ideal.contention_bound ~latency:lat ~a ~b ())

let test_ideal_disjoint_targets () =
  let a = profile [ ((Target.Pf0, Op.Code), 100) ] in
  let b = profile [ ((Target.Pf1, Op.Code), 100) ] in
  Alcotest.(check int) "no same-target conflicts" 0
    (Contention.Ideal.contention_bound ~latency:lat ~a ~b ())

let test_ideal_dirty_latency () =
  let a = profile [ ((Target.Lmu, Op.Data), 4) ] in
  let b = profile [ ((Target.Lmu, Op.Data), 10) ] in
  Alcotest.(check int) "clean" (4 * 11)
    (Contention.Ideal.contention_bound ~latency:lat ~a ~b ());
  Alcotest.(check int) "dirty" (4 * 21)
    (Contention.Ideal.contention_bound ~dirty:true ~latency:lat ~a ~b ())

(* --- fTC model (Eqs. 4, 6-8) --------------------------------------------------- *)

let test_ftc_hand_computed () =
  (* PS = 60 -> n_co = 10; DS = 100 -> n_da = 10
     lco_max = max latency on pf0/pf1/lmu over both ops = 16
     lda_max = max(lco_max, l_dfl_da) = 43
     delta = 10*16 + 10*43 = 590 *)
  let r = Contention.Ftc.contention_bound ~latency:lat ~a:(counters ~ps:60 ~ds:100 ()) () in
  Alcotest.(check int) "n_co" 10 r.Contention.Ftc.n_co;
  Alcotest.(check int) "n_da" 10 r.Contention.Ftc.n_da;
  Alcotest.(check int) "l_co_max (Eq. 6)" 16 r.Contention.Ftc.l_co_max;
  Alcotest.(check int) "l_da_max (Eq. 7)" 43 r.Contention.Ftc.l_da_max;
  Alcotest.(check int) "delta (Eq. 8)" 590 r.Contention.Ftc.delta

let test_ftc_dirty () =
  (* with dirty LMU misses considered, lco_max = 21 (lmu dirty) *)
  let r =
    Contention.Ftc.contention_bound ~dirty:true ~latency:lat
      ~a:(counters ~ps:60 ~ds:0 ()) ()
  in
  Alcotest.(check int) "dirty lco_max" 21 r.Contention.Ftc.l_co_max;
  Alcotest.(check int) "delta" (10 * 21) r.Contention.Ftc.delta

let test_ftc_exact_code_refinement () =
  (* refined fTC replaces the stall-derived code count with PCACHE_MISS *)
  let a = counters ~ps:600 ~ds:0 ~pm:42 () in
  let plain = Contention.Ftc.contention_bound ~latency:lat ~a () in
  let refined = Contention.Ftc.contention_bound ~exact_code_count:42 ~latency:lat ~a () in
  Alcotest.(check int) "plain n_co" 100 plain.Contention.Ftc.n_co;
  Alcotest.(check int) "refined n_co" 42 refined.Contention.Ftc.n_co;
  Alcotest.(check bool) "refinement tightens" true
    (refined.Contention.Ftc.delta < plain.Contention.Ftc.delta)

(* --- ILP-PTAC: hand-checkable synthetic instances ------------------------------ *)

let exact_options =
  { Contention.Ilp_ptac.default_options with Contention.Ilp_ptac.mip_slack = 0 }

let solve ?(options = exact_options) ?(scenario = Scenario.unrestricted) a b =
  Contention.Ilp_ptac.contention_bound ~options ~latency:lat ~scenario ~a ~b ()

let test_ilp_idle_contender () =
  match solve (counters ~ps:600 ~ds:500 ()) (counters ()) with
  | Some r -> Alcotest.(check int) "no contender traffic, no contention" 0 r.Contention.Ilp_ptac.delta
  | None -> Alcotest.fail "unexpected infeasibility"

let test_ilp_idle_task () =
  match solve (counters ()) (counters ~ps:600 ~ds:500 ()) with
  | Some r -> Alcotest.(check int) "task makes no requests" 0 r.Contention.Ilp_ptac.delta
  | None -> Alcotest.fail "unexpected infeasibility"

let test_ilp_single_pair_hand_computed () =
  (* Scenario 1 tailoring, only code on pf: a has PM=10 (PS=60 exactly
     streaming), b has PM=4 (PS=24). Only pf0/pf1 code conflicts possible:
     interference <= min over the split, but the solver picks the split
     maximising conflicts: all on one bank: 4 conflicts x 16 = 64. *)
  let a = counters ~ps:60 ~ds:0 ~pm:10 () in
  let b = counters ~ps:24 ~ds:0 ~pm:4 () in
  match solve ~scenario:Scenario.scenario1 a b with
  | Some r -> Alcotest.(check int) "4 x 16" 64 r.Contention.Ilp_ptac.delta
  | None -> Alcotest.fail "unexpected infeasibility"

let test_ilp_caps_at_task_traffic () =
  (* a tiny task against a huge contender: bound saturates at a's capacity *)
  let a = counters ~ps:60 ~ds:0 ~pm:10 () in
  let b = counters ~ps:60000 ~ds:0 ~pm:10000 () in
  match solve ~scenario:Scenario.scenario1 a b with
  | Some r ->
    Alcotest.(check int) "10 requests x 16" 160 r.Contention.Ilp_ptac.delta
  | None -> Alcotest.fail "unexpected infeasibility"

let test_ilp_respects_zero_pairs () =
  (* scenario 1 zeroes pf data / lmu code / dfl: chosen PTACs obey *)
  let a = counters ~ps:600 ~ds:500 ~pm:50 () in
  let b = counters ~ps:600 ~ds:500 ~pm:50 () in
  match solve ~scenario:Scenario.scenario1 a b with
  | Some r ->
    List.iter
      (fun (t, o) ->
         Alcotest.(check int)
           (Printf.sprintf "a zero (%s,%s)" (Target.to_string t) (Op.to_string o))
           0
           (Access_profile.get r.Contention.Ilp_ptac.a_counts t o);
         Alcotest.(check int)
           (Printf.sprintf "b zero (%s,%s)" (Target.to_string t) (Op.to_string o))
           0
           (Access_profile.get r.Contention.Ilp_ptac.b_counts t o))
      (Scenario.zero_pairs Scenario.scenario1)
  | None -> Alcotest.fail "unexpected infeasibility"

let test_ilp_pm_equality_respected () =
  let a = counters ~ps:600 ~ds:500 ~pm:50 () in
  let b = counters ~ps:600 ~ds:500 ~pm:30 () in
  match solve ~scenario:Scenario.scenario1 a b with
  | Some r ->
    let code_sum p =
      Access_profile.get p Target.Pf0 Op.Code + Access_profile.get p Target.Pf1 Op.Code
    in
    Alcotest.(check int) "a code sum = PM_a" 50 (code_sum r.Contention.Ilp_ptac.a_counts);
    Alcotest.(check int) "b code sum = PM_b" 30 (code_sum r.Contention.Ilp_ptac.b_counts)
  | None -> Alcotest.fail "unexpected infeasibility"

let test_ilp_contender_info_tightens () =
  let a = counters ~ps:6000 ~ds:5000 ~pm:500 () in
  let small_b = counters ~ps:60 ~ds:50 ~pm:5 () in
  let with_info = Option.get (solve ~scenario:Scenario.scenario1 a small_b) in
  let without =
    Option.get
      (solve
         ~options:
           { exact_options with Contention.Ilp_ptac.use_contender_info = false }
         ~scenario:Scenario.scenario1 a small_b)
  in
  Alcotest.(check bool)
    (Printf.sprintf "info tightens (%d < %d)" with_info.Contention.Ilp_ptac.delta
       without.Contention.Ilp_ptac.delta)
    true
    (with_info.Contention.Ilp_ptac.delta < without.Contention.Ilp_ptac.delta)

let test_ilp_monotone_in_contender () =
  let a = counters ~ps:6000 ~ds:5000 ~pm:500 () in
  let deltas =
    List.map
      (fun k ->
         let b = counters ~ps:(60 * k) ~ds:(50 * k) ~pm:(6 * k) () in
         (Option.get (solve ~scenario:Scenario.scenario1 a b)).Contention.Ilp_ptac.delta)
      [ 1; 4; 16; 64 ]
  in
  let rec monotone = function
    | x :: (y :: _ as rest) -> x <= y && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "delta non-decreasing in contender load" true (monotone deltas)

let test_ilp_equality_modes_on_consistent_readings () =
  (* counters crafted to be exactly representable: 10 code requests to pf
     at cs 6 (PS = 60) and 10 data to lmu at cs 10 (DS = 100): Exact and
     Window feasible, all three modes agree *)
  let a = counters ~ps:60 ~ds:100 ~pm:10 () in
  let b = counters ~ps:60 ~ds:100 ~pm:10 () in
  let deltas =
    List.map
      (fun mode ->
         match
           solve ~options:{ exact_options with Contention.Ilp_ptac.equality_mode = mode }
             ~scenario:Scenario.scenario1 a b
         with
         | Some r -> r.Contention.Ilp_ptac.delta
         | None -> -1)
      [ Contention.Ilp_ptac.Exact; Contention.Ilp_ptac.Window; Contention.Ilp_ptac.Upper ]
  in
  match deltas with
  | [ e; w; u ] ->
    Alcotest.(check bool) "exact feasible" true (e >= 0);
    Alcotest.(check int) "exact = window" e w;
    Alcotest.(check bool) "upper at least as loose" true (u >= e)
  | _ -> assert false

let test_ilp_mip_slack_bracket () =
  let a = counters ~ps:2753 ~ds:863 ~pm:458 ~dmc:20 () in
  let b = counters ~ps:1404 ~ds:428 ~pm:233 ~dmc:20 () in
  let run slack =
    (Option.get
       (solve ~options:{ exact_options with Contention.Ilp_ptac.mip_slack = slack }
          ~scenario:Scenario.scenario2 a b))
      .Contention.Ilp_ptac.delta
  in
  let exact = run 0 and slacked = run 16 in
  Alcotest.(check bool)
    (Printf.sprintf "exact %d <= slacked %d <= exact+16" exact slacked)
    true
    (exact <= slacked && slacked <= exact + 16)

let test_ilp_exact_mode_infeasible_on_real_readings () =
  (* real readings include above-minimum stalls; the literal equality of
     Eqs. 20-23 then contradicts the exact PCACHE_MISS tailoring *)
  let app = Workload.Control_loop.app Workload.Control_loop.S1 in
  let a = (Mbta.Measurement.isolation app).Mbta.Measurement.counters in
  match
    solve ~options:{ exact_options with Contention.Ilp_ptac.equality_mode = Contention.Ilp_ptac.Exact }
      ~scenario:Scenario.scenario1 a a
  with
  | None -> ()
  | Some _ -> Alcotest.fail "expected infeasibility under Exact"

let test_ilp_build_model_lookup () =
  let model, lookup =
    Contention.Ilp_ptac.build_model ~latency:lat ~scenario:Scenario.scenario1
      ~a:(counters ~ps:60 ~ds:50 ~pm:5 ())
      ~b:(counters ~ps:60 ~ds:50 ~pm:5 ())
      ()
  in
  (* 3 roles x 7 admissible pairs *)
  Alcotest.(check int) "21 variables" 21 (Ilp.Model.num_vars model);
  List.iter
    (fun name -> ignore (lookup name))
    [ "na_pf0_co"; "nb_lmu_da"; "nba_dfl_da" ];
  (try
     ignore (lookup "nonsense");
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

(* --- priority blocking bound ------------------------------------------------------ *)

let test_priority_blocking_hand_computed () =
  (* PS = 60 -> n_co = 10; DS = 100 -> n_da = 10
     blocking = one in-service transaction per request: 10*16 + 10*43 *)
  let r =
    Contention.Priority.contention_bound ~latency:lat ~a:(counters ~ps:60 ~ds:100 ()) ()
  in
  Alcotest.(check int) "blocking_co" 16 r.Contention.Priority.blocking_co;
  Alcotest.(check int) "blocking_da" 43 r.Contention.Priority.blocking_da;
  Alcotest.(check int) "delta" 590 r.Contention.Priority.delta

let test_priority_equals_ftc_shape () =
  (* numerically the blocking bound matches the single-contender fTC bound;
     its added value is independence from the number of contenders *)
  let a = counters ~ps:1234 ~ds:5678 () in
  let p = Contention.Priority.contention_bound ~latency:lat ~a () in
  let f = Contention.Ftc.contention_bound ~latency:lat ~a () in
  Alcotest.(check int) "same formula" f.Contention.Ftc.delta p.Contention.Priority.delta

(* --- multi-contender and FSB ----------------------------------------------------- *)

let test_multi_is_sum () =
  let a = counters ~ps:6000 ~ds:5000 ~pm:500 () in
  let b1 = counters ~ps:600 ~ds:500 ~pm:50 () in
  let b2 = counters ~ps:300 ~ds:200 ~pm:20 () in
  let single b =
    (Contention.Ilp_ptac.contention_bound_exn ~options:exact_options ~latency:lat
       ~scenario:Scenario.scenario1 ~a ~b ())
      .Contention.Ilp_ptac.delta
  in
  match
    Contention.Multi.contention_bound ~options:exact_options ~latency:lat
      ~scenario:Scenario.scenario1 ~a ~contenders:[ b1; b2 ] ()
  with
  | Some r ->
    Alcotest.(check int) "sum of singles" (single b1 + single b2) r.Contention.Multi.delta
  | None -> Alcotest.fail "unexpected infeasibility"

let test_fsb_hand_computed () =
  (* a: n_co = 10, n_da = 10 (PS=60, DS=100); b: n_co = 5 (PS=30), n_da = 2
     (DS=20): pair 2 data at 43, then 5 code at 16 -> 86 + 80 = 166 *)
  let r =
    Contention.Fsb.contention_bound ~latency:lat
      ~a:(counters ~ps:60 ~ds:100 ())
      ~b:(counters ~ps:30 ~ds:20 ())
      ()
  in
  Alcotest.(check int) "paired data" 2 r.Contention.Fsb.paired_data;
  Alcotest.(check int) "paired code" 5 r.Contention.Fsb.paired_code;
  Alcotest.(check int) "delta" 166 r.Contention.Fsb.delta

let test_fsb_saturates () =
  (* contender bigger than the task: every task request delayed once *)
  let r =
    Contention.Fsb.contention_bound ~latency:lat
      ~a:(counters ~ps:60 ~ds:0 ())
      ~b:(counters ~ps:0 ~ds:10000 ())
      ()
  in
  Alcotest.(check int) "10 task requests paired with data" 10 r.Contention.Fsb.paired_data;
  Alcotest.(check int) "delta" (10 * 43) r.Contention.Fsb.delta

let test_fsb_dominates_crossbar () =
  (* the single-bus reduction can only be more pessimistic than the
     crossbar-aware ILP on identical inputs (default options: the 16-cycle
     MIP slack is negligible against the gap) *)
  let a = counters ~ps:6000 ~ds:5000 ~pm:500 () in
  let b = counters ~ps:1200 ~ds:900 ~pm:100 () in
  let ilp =
    (Contention.Ilp_ptac.contention_bound_exn ~latency:lat
       ~scenario:Scenario.unrestricted ~a ~b ())
      .Contention.Ilp_ptac.delta
  in
  let fsb = (Contention.Fsb.contention_bound ~latency:lat ~a ~b ()).Contention.Fsb.delta in
  Alcotest.(check bool) (Printf.sprintf "fsb %d >= crossbar %d" fsb ilp) true (fsb >= ilp)

(* --- report ------------------------------------------------------------------------ *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_report_markdown () =
  let a = counters ~ps:600 ~ds:500 ~pm:50 () in
  let b = counters ~ps:300 ~ds:250 ~pm:25 () in
  let text =
    Contention.Report.markdown ~latency:lat ~scenario:Scenario.scenario1 ~a ~b
      ~isolation_cycles:10_000 ~observed_cycles:10_500 ()
  in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("report contains " ^ needle) true (contains text needle))
    [
      "# Contention-aware WCET report";
      "scenario1";
      "PMEM_STALL";
      "fTC";
      "ILP-PTAC";
      "binding constraints";
      "observed multicore execution";
    ]

let test_report_binding_constraints () =
  let a = counters ~ps:600 ~ds:500 ~pm:50 () in
  let b = counters ~ps:300 ~ds:250 ~pm:25 () in
  let r =
    Option.get (solve ~options:Contention.Ilp_ptac.default_options
                  ~scenario:Scenario.scenario1 a b)
  in
  let binding =
    Contention.Report.binding_constraints ~latency:lat ~scenario:Scenario.scenario1
      ~a ~b r
  in
  (* the PCACHE_MISS tailoring equalities are always binding *)
  Alcotest.(check bool) "pm_a binding" true (List.mem_assoc "pm_a" binding);
  Alcotest.(check bool) "pm_b binding" true (List.mem_assoc "pm_b" binding)

(* --- signatures ----------------------------------------------------------------------- *)

let test_signatures_grid () =
  let max = counters ~ps:600 ~ds:500 ~pm:60 () in
  let templates = Contention.Signatures.grid ~steps:4 ~max in
  Alcotest.(check int) "4 rungs" 4 (List.length templates);
  (* each rung dominates its predecessor; the top equals max *)
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "monotone ladder" true
        (Contention.Signatures.dominates
           b.Contention.Signatures.counters a.Contention.Signatures.counters);
      check rest
    | [ top ] ->
      Alcotest.(check bool) "top = max" true
        (Counters.equal top.Contention.Signatures.counters max)
    | [] -> ()
  in
  check templates;
  (try
     ignore (Contention.Signatures.grid ~steps:0 ~max);
     Alcotest.fail "steps 0 must be rejected"
   with Invalid_argument _ -> ())

let test_signatures_table_monotone () =
  let a = counters ~ps:6000 ~ds:5000 ~pm:600 () in
  let max = counters ~ps:3000 ~ds:2500 ~pm:300 () in
  let table =
    Contention.Signatures.precompute ~latency:lat ~scenario:Scenario.scenario1 ~a
      ~templates:(Contention.Signatures.grid ~steps:5 ~max)
      ()
  in
  let deltas = List.map (fun e -> e.Contention.Signatures.delta) table.Contention.Signatures.entries in
  let rec monotone = function
    | x :: (y :: _ as rest) -> x <= y && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "budgets grow with the template" true (monotone deltas)

let test_signatures_classification () =
  let a = counters ~ps:6000 ~ds:5000 ~pm:600 () in
  let max = counters ~ps:3000 ~ds:2500 ~pm:300 () in
  let table =
    Contention.Signatures.precompute ~latency:lat ~scenario:Scenario.scenario1 ~a
      ~templates:(Contention.Signatures.grid ~steps:5 ~max)
      ()
  in
  (* a light contender lands on a low rung, with a budget covering its
     direct bound *)
  let b = counters ~ps:500 ~ds:400 ~pm:50 () in
  (match Contention.Signatures.classify table b with
   | None -> Alcotest.fail "light contender must classify"
   | Some e ->
     Alcotest.(check string) "lowest dominating rung" "load-1/5"
       e.Contention.Signatures.template.Contention.Signatures.label;
     let direct =
       (Option.get (solve ~options:Contention.Ilp_ptac.default_options
                      ~scenario:Scenario.scenario1 a b))
         .Contention.Ilp_ptac.delta
     in
     Alcotest.(check bool)
       (Printf.sprintf "budget %d covers direct bound %d"
          e.Contention.Signatures.delta direct)
       true
       (e.Contention.Signatures.delta >= direct));
  (* an oversized contender exceeds the ladder *)
  let huge = counters ~ps:60000 ~ds:50000 ~pm:6000 () in
  Alcotest.(check bool) "oversized contender rejected" true
    (Contention.Signatures.classify table huge = None)

(* --- property tests: simulator ground truth vs model bounds ---------------------- *)

(* Random deployment-conformant task pair; the simulator provides isolation
   counters, ground-truth profiles and the observed co-run slowdown that
   every model bound must dominate. *)

let gen_task_spec =
  let open QCheck.Gen in
  let* code_lines = int_range 8 96 in
  let* lmu_loads = int_range 0 60 in
  let* dfl_loads = int_range 0 12 in
  let* lmu_stores = int_range 0 20 in
  let* compute = int_range 1 60 in
  let* reps = int_range 2 6 in
  return (code_lines, lmu_loads, dfl_loads, lmu_stores, compute, reps)

let build_task slot (code_lines, lmu_loads, dfl_loads, lmu_stores, compute, reps) =
  let open Tcsim in
  let pspr = Memory_map.pspr_base in
  let lmu = Memory_map.lmu_uncached_base + (slot * 12 * 1024) in
  let dfl = Memory_map.dfl_base + (slot * 64 * 1024) in
  let pf = Memory_map.pf0_cached_base + (slot * 0x40000) in
  let body =
    List.init code_lines (fun i ->
        Program.I { Program.pc = pf + (i * 32); kind = Program.Compute 1 })
    @ List.init lmu_loads (fun i ->
        Program.I { Program.pc = pspr + (4 * i); kind = Program.Load (lmu + (4 * i)) })
    @ List.init dfl_loads (fun i ->
        Program.I { Program.pc = pspr + 0x800 + (4 * i); kind = Program.Load (dfl + (32 * i)) })
    @ List.init lmu_stores (fun i ->
        Program.I
          { Program.pc = pspr + 0x1000 + (4 * i); kind = Program.Store (lmu + 4096 + (4 * i)) })
    @ [ Program.I { Program.pc = pspr + 0x2000; kind = Program.Compute compute } ]
  in
  Program.make ~name:(Printf.sprintf "rand%d" slot) [ Program.loop reps body ]

let prop_models_upper_bound_random_coruns =
  QCheck.Test.make ~name:"fTC and ILP bounds dominate random co-runs" ~count:25
    (QCheck.pair (QCheck.make gen_task_spec) (QCheck.make gen_task_spec))
    (fun (spec_a, spec_b) ->
       let pa = build_task 0 spec_a and pb = build_task 1 spec_b in
       let iso_a = Mbta.Measurement.isolation ~core:0 pa in
       let iso_b = Mbta.Measurement.isolation ~core:1 pb in
       let co = Mbta.Measurement.corun ~analysis:(pa, 0) ~contenders:[ (pb, 1) ] () in
       let slowdown = co.Mbta.Measurement.cycles - iso_a.Mbta.Measurement.cycles in
       let a = iso_a.Mbta.Measurement.counters and b = iso_b.Mbta.Measurement.counters in
       let ftc = (Contention.Ftc.contention_bound ~dirty:true ~latency:lat ~a ()).Contention.Ftc.delta in
       let ilp =
         (Contention.Ilp_ptac.contention_bound_exn ~latency:lat
            ~scenario:Scenario.unrestricted ~a ~b ())
           .Contention.Ilp_ptac.delta
       in
       slowdown >= 0 && ftc >= slowdown && ilp >= slowdown)

let prop_ilp_at_most_ftc =
  (* The exact ILP optimum never exceeds the fTC bound (every interference
     unit is charged at most the worst per-op latency fTC assumes). The
     reported delta may sit above the optimum by the documented mip_slack,
     or by the LP integrality overshoot when the node budget triggers the
     relaxation fallback — both bounded by a small constant. *)
  let tolerance = 16 + 60 in
  QCheck.Test.make ~name:"ILP bound never exceeds fTC (mod documented slack)"
    ~count:30
    (QCheck.pair (QCheck.make gen_task_spec) (QCheck.make gen_task_spec))
    (fun (spec_a, spec_b) ->
       let pa = build_task 0 spec_a and pb = build_task 1 spec_b in
       let a = (Mbta.Measurement.isolation ~core:0 pa).Mbta.Measurement.counters in
       let b = (Mbta.Measurement.isolation ~core:1 pb).Mbta.Measurement.counters in
       let ftc = (Contention.Ftc.contention_bound ~dirty:true ~latency:lat ~a ()).Contention.Ftc.delta in
       let ilp =
         (Contention.Ilp_ptac.contention_bound_exn ~latency:lat
            ~scenario:Scenario.unrestricted ~a ~b ())
           .Contention.Ilp_ptac.delta
       in
       ilp <= ftc + tolerance)

let prop_ilp_at_least_ideal =
  QCheck.Test.make ~name:"ILP bound dominates the ideal model at ground truth"
    ~count:30
    (QCheck.pair (QCheck.make gen_task_spec) (QCheck.make gen_task_spec))
    (fun (spec_a, spec_b) ->
       let pa = build_task 0 spec_a and pb = build_task 1 spec_b in
       let iso_a = Mbta.Measurement.isolation ~core:0 pa in
       let iso_b = Mbta.Measurement.isolation ~core:1 pb in
       let ideal =
         Contention.Ideal.contention_bound ~latency:lat
           ~a:iso_a.Mbta.Measurement.ground_truth
           ~b:iso_b.Mbta.Measurement.ground_truth ()
       in
       let ilp =
         (Contention.Ilp_ptac.contention_bound_exn ~latency:lat
            ~scenario:Scenario.unrestricted ~a:iso_a.Mbta.Measurement.counters
            ~b:iso_b.Mbta.Measurement.counters ())
           .Contention.Ilp_ptac.delta
       in
       ilp >= ideal)

let () =
  Alcotest.run "contention"
    [
      ( "ideal",
        [
          Alcotest.test_case "hand-computed" `Quick test_ideal_hand_computed;
          Alcotest.test_case "disjoint targets" `Quick test_ideal_disjoint_targets;
          Alcotest.test_case "dirty latency" `Quick test_ideal_dirty_latency;
        ] );
      ( "ftc",
        [
          Alcotest.test_case "hand-computed (Eqs. 4,6-8)" `Quick test_ftc_hand_computed;
          Alcotest.test_case "dirty variant" `Quick test_ftc_dirty;
          Alcotest.test_case "exact-code refinement" `Quick test_ftc_exact_code_refinement;
        ] );
      ( "ilp-ptac",
        [
          Alcotest.test_case "idle contender" `Quick test_ilp_idle_contender;
          Alcotest.test_case "idle task" `Quick test_ilp_idle_task;
          Alcotest.test_case "hand-computed pf conflicts" `Quick test_ilp_single_pair_hand_computed;
          Alcotest.test_case "caps at task traffic" `Quick test_ilp_caps_at_task_traffic;
          Alcotest.test_case "zero pairs respected" `Quick test_ilp_respects_zero_pairs;
          Alcotest.test_case "PM equality respected" `Quick test_ilp_pm_equality_respected;
          Alcotest.test_case "contender info tightens" `Quick test_ilp_contender_info_tightens;
          Alcotest.test_case "monotone in contender" `Quick test_ilp_monotone_in_contender;
          Alcotest.test_case "equality modes agree when consistent" `Quick
            test_ilp_equality_modes_on_consistent_readings;
          Alcotest.test_case "mip_slack bracket" `Quick test_ilp_mip_slack_bracket;
          Alcotest.test_case "Exact infeasible on real readings" `Quick
            test_ilp_exact_mode_infeasible_on_real_readings;
          Alcotest.test_case "build_model lookup" `Quick test_ilp_build_model_lookup;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "priority blocking hand-computed" `Quick
            test_priority_blocking_hand_computed;
          Alcotest.test_case "priority matches fTC shape" `Quick
            test_priority_equals_ftc_shape;
          Alcotest.test_case "multi-contender = sum" `Quick test_multi_is_sum;
          Alcotest.test_case "FSB hand-computed" `Quick test_fsb_hand_computed;
          Alcotest.test_case "FSB saturates" `Quick test_fsb_saturates;
          Alcotest.test_case "FSB dominates crossbar" `Quick test_fsb_dominates_crossbar;
          Alcotest.test_case "report markdown" `Quick test_report_markdown;
          Alcotest.test_case "report binding constraints" `Quick
            test_report_binding_constraints;
          Alcotest.test_case "signature grid" `Quick test_signatures_grid;
          Alcotest.test_case "signature budgets monotone" `Quick
            test_signatures_table_monotone;
          Alcotest.test_case "signature classification" `Quick
            test_signatures_classification;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_models_upper_bound_random_coruns;
            prop_ilp_at_most_ftc;
            prop_ilp_at_least_ideal;
          ] );
    ]
