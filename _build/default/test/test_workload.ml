(* Tests for the workload generators: deterministic RNG, exact-count
   calibration microbenchmarks, and the structural invariants the two
   deployment variants of the control-loop application must satisfy. *)

open Platform
open Workload

let lat = Latency.default

(* --- rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_pick () =
  let r = Rng.create ~seed:5 in
  let l = [ 1; 2; 3 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "picks member" true (List.mem (Rng.pick r l) l)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick r []))

(* --- microbenchmarks ------------------------------------------------------ *)

let ground_truth p = (Mbta.Measurement.isolation p).Mbta.Measurement.ground_truth

let test_repeated_exact_counts () =
  List.iter
    (fun (t, o) ->
       let n = 100 in
       let p = Microbench.repeated ~target:t ~op:o ~n () in
       let profile = ground_truth p in
       Alcotest.(check int)
         (Printf.sprintf "exactly %d requests to (%s,%s)" n (Target.to_string t)
            (Op.to_string o))
         n
         (Access_profile.get profile t o);
       Alcotest.(check int) "and nothing else" n (Access_profile.total profile))
    Op.valid_pairs

let test_repeated_cacheable_data_counts () =
  (* cacheable windows must still produce exact counts (thrashing span) *)
  List.iter
    (fun t ->
       let n = 300 in
       let p = Microbench.repeated ~target:t ~op:Op.Data ~n ~cacheable:true () in
       let profile = ground_truth p in
       Alcotest.(check int)
         (Printf.sprintf "cacheable data to %s" (Target.to_string t))
         n
         (Access_profile.get profile t Op.Data))
    [ Target.Pf0; Target.Pf1; Target.Lmu ]

let test_repeated_validation () =
  (try
     ignore (Microbench.repeated ~target:Target.Dfl ~op:Op.Code ~n:1 ());
     Alcotest.fail "dfl code must be rejected"
   with Invalid_argument _ -> ());
  (try
     ignore (Microbench.repeated ~target:Target.Dfl ~op:Op.Data ~n:1 ~cacheable:true ());
     Alcotest.fail "cacheable dfl must be rejected"
   with Invalid_argument _ -> ())

let test_probe_deltas () =
  (* covered in depth by the Table 2 experiment; spot-check one pair here *)
  let probe, base = Microbench.single_probe ~target:Target.Dfl ~op:Op.Data () in
  let c p = (Mbta.Measurement.isolation p).Mbta.Measurement.cycles in
  Alcotest.(check int) "dfl lmax" (Latency.lmax lat Target.Dfl Op.Data) (c probe - c base)

(* --- control loop ---------------------------------------------------------- *)

let obs variant = Mbta.Measurement.isolation (Control_loop.app variant)

let test_sc1_profile_invariants () =
  let o = obs Control_loop.S1 in
  let p = o.Mbta.Measurement.ground_truth in
  (* Scenario 1 generates no dfl traffic, no lmu code, no pf data *)
  List.iter
    (fun (t, op) ->
       Alcotest.(check int)
         (Printf.sprintf "no (%s,%s) traffic" (Target.to_string t) (Op.to_string op))
         0
         (Access_profile.get p t op))
    (Scenario.zero_pairs Scenario.scenario1);
  (* all SRI code is cacheable: PCACHE_MISS is the exact code count *)
  Alcotest.(check int) "PM exact"
    o.Mbta.Measurement.counters.Counters.pcache_miss
    (Access_profile.total_op p Op.Code);
  (* no cacheable data at all *)
  Alcotest.(check int) "DMC zero" 0 o.Mbta.Measurement.counters.Counters.dcache_miss_clean;
  Alcotest.(check int) "DMD zero" 0 o.Mbta.Measurement.counters.Counters.dcache_miss_dirty

let test_sc2_profile_invariants () =
  let o = obs Control_loop.S2 in
  let p = o.Mbta.Measurement.ground_truth in
  let c = o.Mbta.Measurement.counters in
  List.iter
    (fun (t, op) ->
       Alcotest.(check int)
         (Printf.sprintf "no (%s,%s) traffic" (Target.to_string t) (Op.to_string op))
         0
         (Access_profile.get p t op))
    (Scenario.zero_pairs Scenario.scenario2);
  Alcotest.(check int) "PM exact" c.Counters.pcache_miss (Access_profile.total_op p Op.Code);
  (* read-only cacheable data: clean misses only, and only cold ones *)
  Alcotest.(check int) "DMD zero" 0 c.Counters.dcache_miss_dirty;
  Alcotest.(check bool) "small DMC (cold misses only)" true
    (c.Counters.dcache_miss_clean > 0 && c.Counters.dcache_miss_clean <= 256);
  (* pf receives data traffic in scenario 2 (the same-slave mixing that
     makes it challenging) *)
  Alcotest.(check bool) "pf data traffic present" true
    (Access_profile.get p Target.Pf0 Op.Data + Access_profile.get p Target.Pf1 Op.Data > 0)

let test_sc2_doubles_code_traffic () =
  let c1 = (obs Control_loop.S1).Mbta.Measurement.counters in
  let c2 = (obs Control_loop.S2).Mbta.Measurement.counters in
  Alcotest.(check bool) "PM roughly doubles (Table 6 signature)" true
    (c2.Counters.pcache_miss > (3 * c1.Counters.pcache_miss) / 2);
  Alcotest.(check bool) "DS collapses (Table 6 signature)" true
    (c2.Counters.dmem_stall * 2 < c1.Counters.dmem_stall)

let test_deployment_conformance () =
  (* every SRI access pair of the generated apps is admissible under the
     scenario's deployment *)
  List.iter
    (fun (variant, scenario) ->
       let p = (obs variant).Mbta.Measurement.ground_truth in
       let allowed = Scenario.allowed_pairs scenario in
       Access_profile.fold
         (fun t o n () ->
            if n > 0 then
              Alcotest.(check bool)
                (Printf.sprintf "(%s,%s) allowed" (Target.to_string t) (Op.to_string o))
                true
                (List.exists
                   (fun (t', o') -> Target.equal t t' && Op.equal o o')
                   allowed))
         p ())
    [ (Control_loop.S1, Scenario.scenario1); (Control_loop.S2, Scenario.scenario2) ]

let test_build_validation () =
  (try
     ignore
       (Control_loop.build Control_loop.S1
          { Control_loop.default_params with Control_loop.lmu_region = 31 * 1024 });
     Alcotest.fail "LMU overflow must be rejected"
   with Invalid_argument _ -> ())

let test_variant_of_scenario () =
  Alcotest.(check bool) "sc1" true
    (Control_loop.variant_of_scenario Scenario.scenario1 = Control_loop.S1);
  Alcotest.(check bool) "sc2" true
    (Control_loop.variant_of_scenario Scenario.scenario2 = Control_loop.S2);
  Alcotest.(check bool) "unrestricted -> S1" true
    (Control_loop.variant_of_scenario Scenario.unrestricted = Control_loop.S1)

(* --- load generators ---------------------------------------------------------- *)

let contender_obs variant level =
  Mbta.Measurement.isolation ~core:1 (Load_gen.make ~variant ~level ())

let test_load_gradient () =
  List.iter
    (fun variant ->
       let traffic level =
         Access_profile.total (contender_obs variant level).Mbta.Measurement.ground_truth
       in
       let h = traffic Load_gen.High
       and m = traffic Load_gen.Medium
       and l = traffic Load_gen.Low in
       Alcotest.(check bool)
         (Printf.sprintf "H(%d) > M(%d) > L(%d)" h m l)
         true
         (h > m && m > l && l > 0))
    [ Control_loop.S1; Control_loop.S2 ]

let test_load_durations_comparable () =
  (* co-runners must not finish long before the application: their
     isolation duration stays within a factor of the app's *)
  List.iter
    (fun variant ->
       let app_cycles = (obs variant).Mbta.Measurement.cycles in
       List.iter
         (fun level ->
            let c = (contender_obs variant level).Mbta.Measurement.cycles in
            Alcotest.(check bool)
              (Printf.sprintf "%s duration %d vs app %d"
                 (Load_gen.level_to_string level) c app_cycles)
              true
              (c >= app_cycles / 2))
         Load_gen.all_levels)
    [ Control_loop.S1; Control_loop.S2 ]

let test_region_slots_disjoint () =
  (* tasks in different slots never touch the same LMU bytes or pf lines *)
  let p0 = Load_gen.params ~variant:Control_loop.S1 ~level:Load_gen.High ~region_slot:0 in
  let p1 = Load_gen.params ~variant:Control_loop.S1 ~level:Load_gen.High ~region_slot:1 in
  Alcotest.(check bool) "lmu windows disjoint" true
    (abs (p0.Control_loop.lmu_region - p1.Control_loop.lmu_region) >= 10 * 1024);
  Alcotest.(check bool) "pf windows disjoint" true
    (abs (p0.Control_loop.pf_region - p1.Control_loop.pf_region) >= 0x40000)

(* --- engine control and DMA ----------------------------------------------------- *)

let test_engine_control_profile () =
  let o = Mbta.Measurement.isolation (Engine_control.task ()) in
  let c = o.Mbta.Measurement.counters in
  let p = o.Mbta.Measurement.ground_truth in
  (* scenario-1 conventions: cacheable flash code, lmu n$ data only *)
  Alcotest.(check int) "no dfl traffic" 0 (Access_profile.get p Target.Dfl Op.Data);
  Alcotest.(check int) "no lmu code" 0 (Access_profile.get p Target.Lmu Op.Code);
  Alcotest.(check int) "PM exact" c.Counters.pcache_miss
    (Access_profile.total_op p Op.Code);
  (* the point of the profile: an order of magnitude less SRI traffic
     than the stress application *)
  let stress =
    (Mbta.Measurement.isolation (Control_loop.app Control_loop.S1)).Mbta.Measurement.ground_truth
  in
  Alcotest.(check bool) "low traffic" true
    (Access_profile.total p * 4 < Access_profile.total stress)

let test_dma_exact_counts () =
  let schedule = { Dma.default_schedule with Dma.bursts = 40 } in
  let spec = Dma.access_profile schedule in
  let config = Experiments.Dma_study.machine_config_with_dma in
  let o = Mbta.Measurement.isolation ~config ~core:3 (Dma.program ~schedule ()) in
  Alcotest.(check bool) "simulated profile = specification" true
    (Access_profile.equal o.Mbta.Measurement.ground_truth spec);
  (* the synthesized stall reading never exceeds the measured one: the
     specification uses the per-request minimum *)
  let synth = Dma.synthesized_counters Latency.default schedule in
  Alcotest.(check bool) "synthesized DS is a lower bound" true
    (synth.Counters.dmem_stall <= o.Mbta.Measurement.counters.Counters.dmem_stall)

let test_dma_validation () =
  let expect_invalid s =
    try
      ignore (Dma.program ~schedule:s ());
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid { Dma.default_schedule with Dma.dst = Target.Pf0 };
  expect_invalid { Dma.default_schedule with Dma.words_per_burst = 0 }

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "microbench",
        [
          Alcotest.test_case "exact request counts" `Quick test_repeated_exact_counts;
          Alcotest.test_case "cacheable data counts" `Quick test_repeated_cacheable_data_counts;
          Alcotest.test_case "validation" `Quick test_repeated_validation;
          Alcotest.test_case "probe deltas" `Quick test_probe_deltas;
        ] );
      ( "control-loop",
        [
          Alcotest.test_case "scenario1 invariants" `Quick test_sc1_profile_invariants;
          Alcotest.test_case "scenario2 invariants" `Quick test_sc2_profile_invariants;
          Alcotest.test_case "scenario2 vs scenario1" `Quick test_sc2_doubles_code_traffic;
          Alcotest.test_case "deployment conformance" `Quick test_deployment_conformance;
          Alcotest.test_case "window validation" `Quick test_build_validation;
          Alcotest.test_case "variant mapping" `Quick test_variant_of_scenario;
        ] );
      ( "load-gen",
        [
          Alcotest.test_case "H > M > L traffic" `Quick test_load_gradient;
          Alcotest.test_case "comparable durations" `Quick test_load_durations_comparable;
          Alcotest.test_case "disjoint region slots" `Quick test_region_slots_disjoint;
        ] );
      ( "engine-dma",
        [
          Alcotest.test_case "engine-control profile" `Quick test_engine_control_profile;
          Alcotest.test_case "DMA exact counts" `Quick test_dma_exact_counts;
          Alcotest.test_case "DMA validation" `Quick test_dma_validation;
        ] );
    ]
