(* Command-line front end for the AURIX TC27x contention analysis.

   Subcommands mirror the paper's workflow:
     calibrate   measure the Table 2 timing constants (microbenchmarks)
     counters    collect Table 6 debug-counter readings in isolation
     tables      print the static Tables 3, 4 and 5
     figure4     reproduce Figure 4 (model predictions vs isolation)
     estimate    one contention-aware WCET estimate, with model details
     lint        static analyses over models, counters, scenarios, programs
     ablations   run the A1-A4 ablation studies
     sweep       contender-load sweep of the ILP bound *)

open Cmdliner

let scenario_conv =
  let parse s =
    match Platform.Scenario.find s with
    | Some sc -> Ok sc
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown scenario %S (expected scenario1, scenario2 or unrestricted)" s))
  in
  let print fmt (s : Platform.Scenario.t) =
    Format.pp_print_string fmt s.Platform.Scenario.name
  in
  Arg.conv (parse, print)

let level_conv =
  let parse = function
    | "high" | "h" -> Ok Workload.Load_gen.High
    | "medium" | "m" -> Ok Workload.Load_gen.Medium
    | "low" | "l" -> Ok Workload.Load_gen.Low
    | s -> Error (`Msg (Printf.sprintf "unknown load level %S (high|medium|low)" s))
  in
  let print fmt l =
    Format.pp_print_string fmt (Workload.Load_gen.level_to_string l)
  in
  Arg.conv (parse, print)

let scenario_arg =
  Arg.(
    value
    & opt scenario_conv Platform.Scenario.scenario1
    & info [ "s"; "scenario" ] ~docv:"SCENARIO"
        ~doc:"Deployment scenario: scenario1, scenario2 or unrestricted.")

let level_arg =
  Arg.(
    value
    & opt level_conv Workload.Load_gen.High
    & info [ "l"; "load" ] ~docv:"LEVEL" ~doc:"Contender load level: high, medium or low.")

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "JOBS must be >= 1, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "invalid value %S, expected an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Degree of parallelism for independent experiment cells (default: \
           $(b,AURIX_JOBS) or the machine's domain count). Results are \
           identical for every value.")

(* --- simulator kernel -------------------------------------------------------- *)

let kernel_conv =
  let parse s =
    match Tcsim.Machine.kernel_of_string s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg (Printf.sprintf "invalid kernel %S, expected 'event' or 'stepped'" s))
  in
  Arg.conv
    ( parse,
      fun fmt k -> Format.pp_print_string fmt (Tcsim.Machine.kernel_to_string k) )

let kernel_arg =
  Arg.(
    value
    & opt (some kernel_conv) None
    & info [ "kernel" ] ~docv:"KERNEL"
        ~doc:
          "Simulator kernel: $(b,event) (skip-ahead scheduling, the default) \
           or $(b,stepped) (the cycle-by-cycle oracle). Results are \
           bit-identical for both; also settable via $(b,AURIX_KERNEL).")

let apply_kernel = function
  | None -> ()
  | Some k -> Tcsim.Machine.set_default_kernel k

(* --- observability ---------------------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run and write it to $(docv) as Chrome \
           trace_event JSON (open in chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a JSON snapshot of the metrics registry (solver, simulator, \
           cache and lint counters) to $(docv) after the run.")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let dump_obs trace metrics =
  (match trace with
   | None -> ()
   | Some path ->
     write_file path (Obs.Tracer.to_chrome_json ());
     Format.eprintf "trace written to %s@." path);
  match metrics with
  | None -> ()
  | Some path ->
    write_file path (Obs.Metrics.to_json ());
    Format.eprintf "metrics written to %s@." path

(* Wraps a subcommand body: enables the tracer when a trace file was
   requested and dumps the requested files afterwards — also when the
   body raises, so a crashed run still leaves its trace behind. *)
let with_obs kernel trace metrics f =
  apply_kernel kernel;
  if trace <> None then Obs.Tracer.enable ();
  Fun.protect ~finally:(fun () -> dump_obs trace metrics) f

(* --- calibrate -------------------------------------------------------------- *)

let calibrate_cmd =
  let run kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    let t2 = Experiments.Table2.run () in
    Format.printf "%a@." Experiments.Table2.pp t2;
    Format.printf "matches reference constants: %b@."
      (Experiments.Table2.matches_reference t2 Platform.Latency.default)
  in
  Cmd.v
    (Cmd.info "calibrate" ~doc:"Measure the Table 2 latency/stall constants.")
    Term.(const run $ kernel_arg $ trace_arg $ metrics_arg)

(* --- counters ---------------------------------------------------------------- *)

let counters_cmd =
  let run jobs kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    Format.printf "%a@." Experiments.Table6.pp (Experiments.Table6.run ?jobs ())
  in
  Cmd.v
    (Cmd.info "counters" ~doc:"Collect the Table 6 counter readings in isolation.")
    Term.(const run $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- tables ------------------------------------------------------------------- *)

let tables_cmd =
  let run () =
    Format.printf "--- Table 3 ---@.%a@." Experiments.Static_tables.pp_table3 ();
    Format.printf "--- Table 4 ---@.%a@." Experiments.Static_tables.pp_table4 ();
    Format.printf "--- Table 5 ---@.%a@." Experiments.Static_tables.pp_table5 ()
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Print the static Tables 3, 4 and 5.")
    Term.(const run $ const ())

(* --- figure4 ------------------------------------------------------------------ *)

let figure4_cmd =
  let run all scenario jobs kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    let rows =
      if all then Experiments.Figure4.run_all ?jobs ()
      else Experiments.Figure4.run_scenario ?jobs scenario
    in
    Format.printf "%a@." Experiments.Figure4.pp_rows rows
  in
  let all_arg =
    Arg.(value & flag & info [ "a"; "all" ] ~doc:"Run both scenarios (default: one).")
  in
  Cmd.v
    (Cmd.info "figure4" ~doc:"Reproduce Figure 4: model predictions vs isolation.")
    Term.(const run $ all_arg $ scenario_arg $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- estimate ------------------------------------------------------------------ *)

let estimate_cmd =
  let run scenario level no_contender_info dump_lp kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    let variant = Workload.Control_loop.variant_of_scenario scenario in
    let app = Workload.Control_loop.app variant in
    let con = Workload.Load_gen.make ~variant ~level ()
    in
    let iso_a = Mbta.Measurement.isolation ~core:0 app in
    let iso_b = Mbta.Measurement.isolation ~core:1 con in
    let latency = Platform.Latency.default in
    let a = iso_a.Mbta.Measurement.counters and b = iso_b.Mbta.Measurement.counters in
    Format.printf "application counters:@.%a@.@." Platform.Counters.pp a;
    Format.printf "contender (%s) counters:@.%a@.@."
      (Workload.Load_gen.level_to_string level)
      Platform.Counters.pp b;
    let is_s2 = scenario.Platform.Scenario.name = "scenario2" in
    let ftc = Contention.Ftc.contention_bound ~dirty:is_s2 ~latency ~a () in
    Format.printf "%a@." Contention.Ftc.pp ftc;
    let options =
      {
        Contention.Ilp_ptac.default_options with
        Contention.Ilp_ptac.use_contender_info = not no_contender_info;
      }
    in
    (match dump_lp with
     | None -> ()
     | Some path ->
       let model, _ =
         Contention.Ilp_ptac.build_model ~options ~latency ~scenario ~a ~b ()
       in
       let oc = open_out path in
       output_string oc (Ilp.Lp_format.to_string model);
       close_out oc;
       Format.printf "ILP written to %s (CPLEX LP format)@.@." path);
    (match Contention.Ilp_ptac.contention_bound ~options ~latency ~scenario ~a ~b () with
     | Some r ->
       Format.printf "%a@." Contention.Ilp_ptac.pp_result r;
       let iso = iso_a.Mbta.Measurement.cycles in
       Format.printf "@.WCET estimates over isolation = %d cycles:@." iso;
       Format.printf "  fTC      %a@." Mbta.Wcet.pp
         (Mbta.Wcet.make ~isolation_cycles:iso ~contention_cycles:ftc.Contention.Ftc.delta);
       Format.printf "  ILP-PTAC %a@." Mbta.Wcet.pp
         (Mbta.Wcet.make ~isolation_cycles:iso ~contention_cycles:r.Contention.Ilp_ptac.delta)
     | None -> Format.printf "ILP-PTAC: infeasible@.")
  in
  let no_info_arg =
    Arg.(
      value & flag
      & info [ "no-contender-info" ]
          ~doc:"Drop Eqs. 22-23: fully time-composable ILP bound.")
  in
  let dump_lp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-lp" ] ~docv:"FILE"
          ~doc:"Write the tailored ILP to $(docv) in CPLEX LP format.")
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Compute one contention-aware WCET estimate with model details.")
    Term.(
      const run $ scenario_arg $ level_arg $ no_info_arg $ dump_lp_arg
      $ kernel_arg $ trace_arg $ metrics_arg)

(* --- ablations ------------------------------------------------------------------- *)

let ablations_cmd =
  let run jobs kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    Format.printf "--- A1: contender information ---@.%a@."
      Experiments.Ablations.pp_a1 (Experiments.Ablations.a1_contender_info ?jobs ());
    Format.printf "--- A2: stall-equality encodings ---@.%a@."
      Experiments.Ablations.pp_a2 (Experiments.Ablations.a2_equality_modes ?jobs ());
    Format.printf "--- A3: two contenders ---@.%a@.%a@."
      Experiments.Ablations.pp_a3
      (Experiments.Ablations.a3_multi_contender ?jobs Platform.Scenario.scenario1)
      Experiments.Ablations.pp_a3
      (Experiments.Ablations.a3_multi_contender ?jobs Platform.Scenario.scenario2);
    Format.printf "--- A4: FSB reduction ---@.%a@."
      Experiments.Ablations.pp_a4 (Experiments.Ablations.a4_fsb ?jobs ())
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Run the A1-A4 ablation studies.")
    Term.(const run $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- portability ----------------------------------------------------------------- *)

let portability_cmd =
  let run jobs kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    Format.printf "%a@." Experiments.Portability.pp
      (Experiments.Portability.run ?jobs ())
  in
  Cmd.v
    (Cmd.info "portability"
       ~doc:"Re-target the analysis at other TriCore-family timings (Sec. 4.3).")
    Term.(const run $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- priority ---------------------------------------------------------------------- *)

let priority_cmd =
  let run scenario jobs kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    Format.printf "%a@." Experiments.Priority_study.pp
      (Experiments.Priority_study.run ~scenario ?jobs ())
  in
  Cmd.v
    (Cmd.info "priority"
       ~doc:"Compare same-class round-robin against a prioritised application.")
    Term.(const run $ scenario_arg $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- realistic -------------------------------------------------------------------- *)

let realistic_cmd =
  let run jobs kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    Format.printf "%a@." Experiments.Realistic.pp
      (Experiments.Realistic.run ?jobs ())
  in
  Cmd.v
    (Cmd.info "realistic"
       ~doc:
         "Bound a production-style engine-control task (the paper's ~10% \
          use-case remark).")
    Term.(const run $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- signatures ----------------------------------------------------------------------- *)

let signatures_cmd =
  let run scenario steps kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    let variant = Workload.Control_loop.variant_of_scenario scenario in
    let latency = Platform.Latency.default in
    let app = Workload.Control_loop.app variant in
    let a = (Mbta.Measurement.isolation ~core:0 app).Mbta.Measurement.counters in
    (* the template ladder tops out at 1.5x the H-Load signature *)
    let h =
      (Mbta.Measurement.isolation ~core:1
         (Workload.Load_gen.make ~variant ~level:Workload.Load_gen.High ()))
        .Mbta.Measurement.counters
    in
    let top = Platform.Counters.scale_div h ~num:3 ~den:2 in
    let table =
      Contention.Signatures.precompute ~latency ~scenario ~a
        ~templates:(Contention.Signatures.grid ~steps ~max:top)
        ()
    in
    Format.printf "%a@." Contention.Signatures.pp table;
    Format.printf "@.classification of the measured co-runners:@.";
    List.iter
      (fun level ->
         let b =
           (Mbta.Measurement.isolation ~core:1
              (Workload.Load_gen.make ~variant ~level ()))
             .Mbta.Measurement.counters
         in
         match Contention.Signatures.classify table b with
         | Some e ->
           Format.printf "  %-8s -> %s (delta budget %d)@."
             (Workload.Load_gen.level_to_string level)
             e.Contention.Signatures.template.Contention.Signatures.label
             e.Contention.Signatures.delta
         | None ->
           Format.printf "  %-8s -> exceeds every template@."
             (Workload.Load_gen.level_to_string level))
      Workload.Load_gen.all_levels
  in
  let steps_arg =
    Arg.(value & opt int 6 & info [ "steps" ] ~docv:"N" ~doc:"Template ladder size.")
  in
  Cmd.v
    (Cmd.info "signatures"
       ~doc:
         "Precompute contention budgets against a ladder of contender \
          templates and classify the measured co-runners.")
    Term.(const run $ scenario_arg $ steps_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- dma ---------------------------------------------------------------------------- *)

let dma_cmd =
  let run jobs kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    Format.printf "%a@." Experiments.Dma_study.pp (Experiments.Dma_study.run ?jobs ())
  in
  Cmd.v
    (Cmd.info "dma"
       ~doc:"Bound interference from a specification-driven DMA channel.")
    Term.(const run $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- report ------------------------------------------------------------------------- *)

let report_cmd =
  let run scenario level kernel output =
    apply_kernel kernel;
    let variant = Workload.Control_loop.variant_of_scenario scenario in
    let app = Workload.Control_loop.app variant in
    let con = Workload.Load_gen.make ~variant ~level () in
    let iso = Mbta.Measurement.isolation ~core:0 app in
    let b = (Mbta.Measurement.isolation ~core:1 con).Mbta.Measurement.counters in
    let observed =
      (Mbta.Measurement.corun ~analysis:(app, 0) ~contenders:[ (con, 1) ] ())
        .Mbta.Measurement.cycles
    in
    let text =
      Contention.Report.markdown ~latency:Platform.Latency.default ~scenario
        ~a:iso.Mbta.Measurement.counters ~b
        ~isolation_cycles:iso.Mbta.Measurement.cycles ~observed_cycles:observed ()
    in
    match output with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Format.printf "report written to %s@." path
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the report to $(docv).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Generate a markdown contention-analysis report for one estimate.")
    Term.(const run $ scenario_arg $ level_arg $ kernel_arg $ output_arg)

(* --- integrate ---------------------------------------------------------------------- *)

let integrate_cmd =
  let run jobs kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    Format.printf "%a@." Experiments.Integration_study.pp
      (Experiments.Integration_study.run ?jobs ())
  in
  Cmd.v
    (Cmd.info "integrate"
       ~doc:
         "Run the system-integration study: contention-aware response-time \
          analysis over a two-core task set.")
    Term.(const run $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- lint ---------------------------------------------------------------------- *)

let lint_cmd =
  let run json fixtures jobs kernel trace metrics =
    (* exit happens outside [with_obs] so the requested files are written
       even when the lint fails *)
    let diags =
      with_obs kernel trace metrics @@ fun () ->
      let diags =
        if fixtures then
        List.concat_map (fun f -> f.Analysis.Fixtures.diags ()) Analysis.Fixtures.all
      else begin
        let latency = Platform.Latency.default in
        (* scenario/deployment consistency of every bundled scenario *)
        let scenario_diags =
          List.concat_map (Analysis.Scenario_lint.check ~latency) Platform.Scenario.all
        in
        (* per (scenario, load) cell: program layout, isolation counters and
           the tailored ILP itself — each cell is independent, so the sweep
           parallelises like the experiments do *)
        let cells =
          List.concat_map
            (fun scenario ->
               List.map (fun load -> (scenario, load)) Workload.Load_gen.all_levels)
            [ Platform.Scenario.scenario1; Platform.Scenario.scenario2 ]
        in
        let cell_diags =
          Runtime.Pool.map ?jobs
            (fun (scenario, load) ->
               let cell =
                 Printf.sprintf "%s/%s" scenario.Platform.Scenario.name
                   (Workload.Load_gen.level_to_string load)
               in
               let variant = Workload.Control_loop.variant_of_scenario scenario in
               let app = Workload.Control_loop.app variant in
               let con = Workload.Load_gen.make ~variant ~level:load () in
               let program_diags =
                 Analysis.Program_lint.check ~scenario
                   [
                     { Analysis.Program_lint.label = "app"; core = 0; program = app };
                     { Analysis.Program_lint.label = "contender"; core = 1; program = con };
                   ]
               in
               let a =
                 (Mbta.Measurement.isolation ~core:0 app).Mbta.Measurement.counters
               in
               let b =
                 (Mbta.Measurement.isolation ~core:1 con).Mbta.Measurement.counters
               in
               let counter_diags =
                 Analysis.Counter_lint.check ~latency ~scenario ~path:[ "app" ] a
                 @ Analysis.Counter_lint.check ~latency ~scenario
                     ~path:[ "contender" ] b
               in
               let model, _ =
                 Contention.Ilp_ptac.build_model ~latency ~scenario ~a ~b ()
               in
               let model_diags =
                 Analysis.Model_lint.check ~path:[ "ilp-ptac" ] model
               in
               Analysis.Diag.record_metrics ~pass:"program" program_diags;
               Analysis.Diag.record_metrics ~pass:"counter" counter_diags;
               Analysis.Diag.record_metrics ~pass:"model" model_diags;
               Analysis.Diag.prefix [ cell ]
                 (program_diags @ counter_diags @ model_diags))
            cells
          |> List.concat
        in
        Analysis.Diag.record_metrics ~pass:"scenario" scenario_diags;
        scenario_diags @ cell_diags
      end
      in
      if json then print_endline (Analysis.Diag.report_to_json diags)
      else Format.printf "%a@." Analysis.Diag.pp_report diags;
      diags
    in
    if Analysis.Diag.has_errors diags then exit 1
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as a machine-readable JSON document.")
  in
  let fixtures_arg =
    Arg.(
      value & flag
      & info [ "fixtures" ]
          ~doc:
            "Lint the bundled seeded-defect fixtures instead of the real \
             configurations; exits non-zero because every fixture contains a \
             defect (self-test of the analyses).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static analyses (ILP model lint, counter consistency, \
          scenario validation, program/memory-map lint) over the bundled \
          configurations without solving anything. Exits non-zero if any \
          error-severity diagnostic is found.")
    Term.(const run $ json_arg $ fixtures_arg $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- sweep --------------------------------------------------------------------- *)

let sweep_cmd =
  let run scenario kernel trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    let variant = Workload.Control_loop.variant_of_scenario scenario in
    let app = Workload.Control_loop.app variant in
    let iso = Mbta.Measurement.isolation ~core:0 app in
    let a = iso.Mbta.Measurement.counters in
    let latency = Platform.Latency.default in
    Format.printf "ILP-PTAC bound vs contender intensity (%s)@."
      scenario.Platform.Scenario.name;
    Format.printf "%-24s %12s %8s@." "contender" "delta" "ratio";
    List.iter
      (fun level ->
         let con = Workload.Load_gen.make ~variant ~level () in
         let b = (Mbta.Measurement.isolation ~core:1 con).Mbta.Measurement.counters in
         match Contention.Ilp_ptac.contention_bound ~latency ~scenario ~a ~b () with
         | Some r ->
           let w =
             Mbta.Wcet.make ~isolation_cycles:iso.Mbta.Measurement.cycles
               ~contention_cycles:r.Contention.Ilp_ptac.delta
           in
           Format.printf "%-24s %12d %8.2f@."
             (Workload.Load_gen.level_to_string level)
             r.Contention.Ilp_ptac.delta w.Mbta.Wcet.ratio
         | None ->
           Format.printf "%-24s %12s@." (Workload.Load_gen.level_to_string level) "infeasible")
      Workload.Load_gen.all_levels
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep the ILP bound over contender load levels.")
    Term.(const run $ scenario_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- profile ------------------------------------------------------------------ *)

let profile_cmd =
  let experiments : (string * (?jobs:int -> unit -> unit)) list =
    [
      ("figure4", fun ?jobs () -> ignore (Experiments.Figure4.run_all ?jobs ()));
      ("table6", fun ?jobs () -> ignore (Experiments.Table6.run ?jobs ()));
      ( "ablations",
        fun ?jobs () ->
          ignore (Experiments.Ablations.a1_contender_info ?jobs ());
          ignore (Experiments.Ablations.a2_equality_modes ?jobs ());
          ignore
            (Experiments.Ablations.a3_multi_contender ?jobs
               Platform.Scenario.scenario1);
          ignore (Experiments.Ablations.a4_fsb ?jobs ()) );
      ("portability", fun ?jobs () -> ignore (Experiments.Portability.run ?jobs ()));
      ( "priority",
        fun ?jobs () ->
          ignore
            (Experiments.Priority_study.run ~scenario:Platform.Scenario.scenario1
               ?jobs ()) );
      ("realistic", fun ?jobs () -> ignore (Experiments.Realistic.run ?jobs ()));
      ( "integrate",
        fun ?jobs () -> ignore (Experiments.Integration_study.run ?jobs ()) );
      ("dma", fun ?jobs () -> ignore (Experiments.Dma_study.run ?jobs ()));
    ]
  in
  let run name runs jobs kernel trace metrics =
    match List.assoc_opt name experiments with
    | None ->
      Format.eprintf "unknown experiment %S (expected one of: %s)@." name
        (String.concat ", " (List.map fst experiments));
      exit 2
    | Some f ->
      apply_kernel kernel;
      (* profiling always wants the span aggregates, so the tracer is on
         even when no --trace file was requested *)
      Obs.Tracer.enable ();
      Fun.protect ~finally:(fun () -> dump_obs trace metrics) @@ fun () ->
      let recorded_jobs =
        match jobs with Some j -> j | None -> Runtime.Pool.default_jobs ()
      in
      for i = 1 to runs do
        (* cold caches each round, so every run solves and simulates the
           same work *)
        Runtime.Solve_cache.clear ();
        Runtime.Run_cache.clear ();
        let (), t =
          Runtime.Telemetry.measure ~jobs:recorded_jobs (fun () -> f ?jobs ())
        in
        Format.printf "run %d/%d: %a@." i runs Runtime.Telemetry.pp t
      done;
      Format.printf "@.%a@." Obs.Tracer.pp_hot_paths ()
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Experiment to profile: figure4, table6, ablations, portability, \
             priority, realistic, integrate or dma.")
  in
  let runs_arg =
    Arg.(
      value & opt int 3
      & info [ "runs" ] ~docv:"N" ~doc:"Number of repetitions (default 3).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one named experiment repeatedly under the span tracer and print \
          per-run telemetry plus the aggregated hot-path table.")
    Term.(const run $ name_arg $ runs_arg $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- audit -------------------------------------------------------------------- *)

let audit_cmd =
  let experiments : (string * (?jobs:int -> unit -> unit)) list =
    [
      ("figure4", fun ?jobs () -> ignore (Experiments.Figure4.run_all ?jobs ()));
      ("table6", fun ?jobs () -> ignore (Experiments.Table6.run ?jobs ()));
      ( "ablations",
        fun ?jobs () ->
          ignore (Experiments.Ablations.a1_contender_info ?jobs ());
          ignore (Experiments.Ablations.a2_equality_modes ?jobs ());
          ignore
            (Experiments.Ablations.a3_multi_contender ?jobs
               Platform.Scenario.scenario1);
          ignore (Experiments.Ablations.a4_fsb ?jobs ()) );
      ( "bnb",
        (* Hard certified solves with intra-solve parallelism: the
           frontier-mining merge path itself produces the certificates
           being audited, at whatever --jobs says. *)
        fun ?jobs () ->
          let state = ref 0x1F123BB5 in
          let rand bound =
            state := ((!state * 0x5DEECE66D) + 0xB) land ((1 lsl 48) - 1);
            (!state lsr 16) mod bound
          in
          let models =
            List.init 6 (fun _ ->
                let q = Numeric.Q.of_int in
                let m = Ilp.Model.create () in
                let nv = 7 + rand 3 in
                let vars =
                  Array.init nv (fun i ->
                      Ilp.Model.add_var m ~integer:true ~ub:(q (3 + rand 6))
                        (Printf.sprintf "x%d" i))
                in
                for _ = 1 to 6 + rand 5 do
                  let terms =
                    Array.to_list
                      (Array.map (fun v -> (q (rand 11 - 4), v)) vars)
                  in
                  Ilp.Model.add_constraint m (Ilp.Linexpr.of_terms terms)
                    Ilp.Model.Le
                    (q (15 + rand 45))
                done;
                Ilp.Model.set_objective m Ilp.Model.Maximize
                  (Ilp.Linexpr.of_terms
                     (Array.to_list
                        (Array.map
                           (fun v -> (Numeric.Q.of_ints (1 + rand 17) 2, v))
                           vars)));
                m)
          in
          Runtime.Pool.with_pool ?jobs (fun pool ->
              List.iter
                (fun m ->
                   ignore
                     (Runtime.Solve_cache.solve_ilp
                        ~parallel:(Runtime.Solve_cache.On_pool pool) m))
                models) );
    ]
  in
  let run name jobs kernel trace metrics =
    let selected =
      if name = "all" then experiments
      else
        match List.assoc_opt name experiments with
        | Some f -> [ (name, f) ]
        | None ->
          Format.eprintf "unknown experiment %S (expected all, %s)@." name
            (String.concat ", " (List.map fst experiments));
          exit 2
    in
    (* exit happens outside [with_obs] so trace/metrics files are written
       even when the audit fails *)
    let ok =
      with_obs kernel trace metrics @@ fun () ->
      Runtime.Solve_cache.set_audit true;
      Fun.protect ~finally:(fun () -> Runtime.Solve_cache.set_audit false)
      @@ fun () ->
      (* cold caches, so every solve of the selected experiments actually
         runs — and is therefore certified and checked *)
      Runtime.Solve_cache.clear ();
      Runtime.Run_cache.clear ();
      List.iter
        (fun (n, f) ->
           Format.printf "=== auditing %s ===@." n;
           f ?jobs ())
        selected;
      let count n = Obs.Metrics.value (Obs.Metrics.counter n) in
      let verified = count "audit.verified"
      and failed = count "audit.failed"
      and skipped = count "audit.skipped" in
      Format.printf "@.audit: %d verified, %d failed, %d skipped@." verified
        failed skipped;
      List.iter
        (fun (key, reason) -> Format.printf "  FAILED %s: %s@." key reason)
        (Runtime.Solve_cache.audit_failures ());
      if skipped > 0 then
        Format.printf
          "  (skipped solves reached the dense fallback tier, which cannot \
           emit certificates)@.";
      failed = 0 && skipped = 0
    in
    if not ok then exit 1
  in
  let name_arg =
    Arg.(
      value
      & pos 0 string "all"
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Experiment whose solves to audit: figure4, table6, ablations or \
             all (default all).")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Re-run the paper experiments in audit mode: every ILP/LP answer \
          must carry a certificate that an independent exact checker \
          verifies. Exits non-zero if any solve fails its audit or produces \
          no certificate. Verdicts are identical for every $(b,--jobs) \
          value.")
    Term.(const run $ name_arg $ jobs_arg $ kernel_arg $ trace_arg $ metrics_arg)

(* --- serve / query ------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path to listen/connect on (default: \
           aurix-serve.sock in the system temp directory). Ignored when \
           $(b,--port) is given.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Listen/connect on TCP $(docv) instead of a Unix socket.")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host for $(b,--port) (default 127.0.0.1).")

let addr_of socket port host =
  match port with
  | Some port -> Serve.Server.Tcp { host; port }
  | None ->
    let path =
      match socket with
      | Some p -> p
      | None -> Filename.concat (Filename.get_temp_dir_name ()) "aurix-serve.sock"
    in
    Serve.Server.Unix_path path

let serve_cmd =
  let run socket port host cache_dir no_disk max_bytes log_file jobs kernel
      trace metrics =
    with_obs kernel trace metrics @@ fun () ->
    (match log_file with
     | Some path ->
       if not (Obs.Log.open_sink path) then begin
         Format.eprintf "cannot open log file %s@." path;
         exit 2
       end
     | None -> ());
    Fun.protect ~finally:Obs.Log.close_sink @@ fun () ->
    let addr = addr_of socket port host in
    let disk =
      if no_disk then None else Some (Serve.Disk_cache.open_ ?root:cache_dir ())
    in
    let engine =
      Serve.Engine.create
        {
          Serve.Engine.default_config with
          Serve.Engine.jobs;
          max_request_bytes = max_bytes;
          disk;
          persist_runtime_caches = disk <> None;
        }
    in
    let stop = Atomic.make false in
    let on_signal _ = Atomic.set stop true in
    (try
       ignore (Sys.signal Sys.sigint (Sys.Signal_handle on_signal));
       ignore (Sys.signal Sys.sigterm (Sys.Signal_handle on_signal))
     with _ -> ());
    (match disk with
     | Some d -> Format.printf "disk cache: %s@." (Serve.Disk_cache.root d)
     | None -> Format.printf "disk cache: disabled@.");
    Fun.protect ~finally:(fun () -> Serve.Engine.close engine) @@ fun () ->
    Serve.Server.serve ~engine ~addr ~stop
      ~on_ready:(fun a ->
          Format.printf "listening on %a@." Serve.Server.pp_addr a;
          flush stdout)
      ()
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Root of the persistent cache tier (default: $(b,AURIX_CACHE_DIR) \
             or ~/.cache/aurix).")
  in
  let no_disk_arg =
    Arg.(
      value & flag
      & info [ "no-disk-cache" ]
          ~doc:"Serve from the in-memory caches only; nothing persists.")
  in
  let max_bytes_arg =
    Arg.(
      value
      & opt int Serve.Engine.default_config.Serve.Engine.max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:"Reject request lines longer than $(docv) bytes (default 1 MiB).")
  in
  let log_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-file" ] ~docv:"FILE"
          ~doc:
            "Append structured JSONL event-log records (connections, cache \
             quarantines, rejects, errors) to $(docv); also settable via \
             $(b,AURIX_LOG). Level via $(b,AURIX_LOG_LEVEL).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the contention-analysis daemon: newline-delimited JSON \
          requests over a Unix or TCP socket, answered through the shared \
          in-memory caches and a persistent on-disk tier that survives \
          restarts.")
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ cache_dir_arg $ no_disk_arg
      $ max_bytes_arg $ log_file_arg $ jobs_arg $ kernel_arg $ trace_arg
      $ metrics_arg)

let query_cmd =
  let run socket port host file op scenario levels models observed id trace
      metrics =
    (* exit happens outside [with_obs] so the requested files are written
       (the client trace carries the request's trace id) *)
    let code =
      with_obs None trace metrics @@ fun () ->
      let addr = addr_of socket port host in
      let client = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
      match file with
      | Some f ->
        let line =
          let ic = open_in f in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> input_line ic)
        in
        let reply = Serve.Client.rpc_line client line in
        print_endline reply;
        (match Serve.Protocol.decode_response reply with
         | Ok (Serve.Protocol.Reject _) -> 3
         | Ok _ -> 0
         | Error msg ->
           Format.eprintf "undecodable response: %s@." msg;
           4)
      | None ->
        let req =
          match op with
          | "ping" -> Serve.Protocol.Ping id
          | "metrics" -> Serve.Protocol.Metrics_req id
          | "stats" -> Serve.Protocol.Stats_req id
          | "shutdown" -> Serve.Protocol.Shutdown id
          | "analyze" ->
            let contenders =
              List.mapi
                (fun i level ->
                   Serve.Protocol.Con_level { level; core = i + 1 })
                levels
            in
            Serve.Protocol.Analyze
              {
                Serve.Protocol.id;
                scenario = scenario.Platform.Scenario.name;
                app = Serve.Protocol.App_bundled;
                contenders;
                models;
                observed;
                trace = None;
              }
          | other ->
            Format.eprintf
              "unknown op %S (expected analyze, ping, metrics, stats or \
               shutdown)@."
              other;
            exit 2
        in
        (* [Client.rpc] originates the trace context when --trace enabled
           the tracer; re-encoding the decoded reply reproduces the
           daemon's bytes (the codec is an exact inverse) *)
        (match Serve.Client.rpc client req with
         | Ok resp ->
           print_endline (Serve.Protocol.encode_response resp);
           (match resp with Serve.Protocol.Reject _ -> 3 | _ -> 0)
         | Error msg ->
           Format.eprintf "undecodable response: %s@." msg;
           4)
    in
    if code <> 0 then exit code
  in
  let file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "Send the first line of $(docv) as a raw request instead of \
             building one from the flags.")
  in
  let op_arg =
    Arg.(
      value
      & opt string "analyze"
      & info [ "op" ] ~docv:"OP"
          ~doc:"Request kind: analyze (default), ping, metrics, stats or shutdown.")
  in
  let loads_arg =
    Arg.(
      value
      & opt_all level_conv []
      & info [ "load" ] ~docv:"LEVEL"
          ~doc:
            "Add a bundled contender at this load level (repeatable; they \
             occupy cores 1, 2 in order).")
  in
  let model_conv =
    let parse s =
      match Serve.Protocol.model_of_string s with
      | Some m -> Ok m
      | None ->
        Error (`Msg (Printf.sprintf "unknown model %S (ideal|ftc|ilp-ptac)" s))
    in
    Arg.conv
      (parse, fun fmt m -> Format.pp_print_string fmt (Serve.Protocol.model_to_string m))
  in
  let models_arg =
    Arg.(
      value
      & opt (list model_conv)
          [ Serve.Protocol.Ftc; Serve.Protocol.Ilp_ptac; Serve.Protocol.Ideal ]
      & info [ "models" ] ~docv:"MODELS"
          ~doc:"Comma-separated bounds to compute (default ftc,ilp-ptac,ideal).")
  in
  let observed_arg =
    Arg.(
      value & flag
      & info [ "observed" ]
          ~doc:"Also run the actual co-run and report its observed cycles.")
  in
  let id_arg =
    Arg.(
      value & opt string "q1"
      & info [ "id" ] ~docv:"ID" ~doc:"Correlation id echoed in the response.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Send one request to a running serve daemon and print the raw \
          response line. Exits 3 when the daemon rejected the request. \
          With $(b,--trace), the request carries a fresh trace id that the \
          daemon adopts, so the client trace and a daemon trace of the \
          same run stitch into one span tree.")
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ file_arg $ op_arg
      $ scenario_arg $ loads_arg $ models_arg $ observed_arg $ id_arg
      $ trace_arg $ metrics_arg)

(* --- stats ------------------------------------------------------------------- *)

let stats_cmd =
  let module J = Obs.Json in
  let rec pp_payload fmt indent j =
    match j with
    | J.Obj kvs ->
      List.iter
        (fun (k, v) ->
           match v with
           | J.Obj _ ->
             Format.fprintf fmt "%s%s:@." indent k;
             pp_payload fmt (indent ^ "  ") v
           | J.List items ->
             Format.fprintf fmt "%s%s: %d item(s)@." indent k
               (List.length items);
             List.iter
               (fun item ->
                  Format.fprintf fmt "%s  - %s@." indent (J.to_string item))
               items
           | _ -> Format.fprintf fmt "%s%s: %s@." indent k (J.to_string v))
        kvs
    | _ -> Format.fprintf fmt "%s%s@." indent (J.to_string j)
  in
  let run socket port host prometheus json id =
    let addr = addr_of socket port host in
    let client = Serve.Client.connect addr in
    let resp =
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () -> Serve.Client.rpc client (Serve.Protocol.Stats_req id))
    in
    match resp with
    | Ok (Serve.Protocol.Stats_reply { stats; payload; _ }) ->
      if prometheus then (
        match J.member "prometheus" payload with
        | Some (J.Str s) -> print_string s
        | _ ->
          Format.eprintf
            "daemon sent no prometheus section (pre-v2 daemon?)@.";
          exit 4)
      else if json then print_endline (J.to_string payload)
      else begin
        let fmt = Format.std_formatter in
        (* v2 payload when present; always the flat v1 counters below *)
        (match payload with
         | J.Obj _ ->
           pp_payload fmt ""
             (J.Obj
                (List.filter
                   (fun (k, _) -> k <> "prometheus")
                   (match payload with J.Obj kvs -> kvs | _ -> [])))
         | _ -> ());
        Format.fprintf fmt "counters:@.";
        List.iter
          (fun (k, v) -> Format.fprintf fmt "  %s: %d@." k v)
          stats;
        Format.pp_print_flush fmt ()
      end
    | Ok _ ->
      Format.eprintf "unexpected response kind to stats request@.";
      exit 4
    | Error msg ->
      Format.eprintf "undecodable response: %s@." msg;
      exit 4
  in
  let prometheus_arg =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "Print the Prometheus text exposition of the daemon's metrics \
             registry instead of the human summary.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the raw introspection payload as one JSON line.")
  in
  let id_arg =
    Arg.(
      value & opt string "stats"
      & info [ "id" ] ~docv:"ID" ~doc:"Correlation id echoed in the response.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Introspect a running serve daemon: uptime, in-flight requests, \
          per-stage latency histograms, cache occupancy and hit rates, \
          audit verdicts and recent rejects — human-readable by default, \
          or as JSON / Prometheus text exposition.")
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ prometheus_arg $ json_arg
      $ id_arg)

(* --- obs --------------------------------------------------------------------- *)

let obs_analyze_cmd =
  let run files json top =
    let inputs =
      List.map
        (fun f ->
           let ic = open_in_bin f in
           let content =
             Fun.protect
               ~finally:(fun () -> close_in_noerr ic)
               (fun () -> really_input_string ic (in_channel_length ic))
           in
           (Filename.basename f, content))
        files
    in
    match Obs.Trace_analyzer.of_strings inputs with
    | Error msg ->
      Format.eprintf "cannot analyze: %s@." msg;
      exit 2
    | Ok t ->
      if json then
        print_endline (Obs.Json.to_string (Obs.Trace_analyzer.to_json ~top t))
      else print_string (Obs.Trace_analyzer.report_string ~top t)
  in
  let files_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"TRACE"
          ~doc:
            "Chrome trace_event JSON file(s) written by $(b,--trace); pass \
             the client's and the daemon's trace of the same run together \
             to stitch them by shared trace id.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the analysis as JSON instead of a report.")
  in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N"
          ~doc:"Bound the slowest-requests and trace lists (default 5).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Analyze exported trace files offline: critical path, per-stage \
          latency breakdown, top-N slowest requests, cache effectiveness \
          and cross-process trace connectivity.")
    Term.(const run $ files_arg $ json_arg $ top_arg)

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:"Offline observability tooling for exported traces.")
    [ obs_analyze_cmd ]

let () =
  let doc = "Multicore contention models for the AURIX TC27x (DAC 2018 reproduction)" in
  let info = Cmd.info "aurix_contention" ~version:"1.0.0" ~doc in
  Obs.Log.init_from_env ();
  exit
    (Cmd.eval
       (Cmd.group info
          [
            calibrate_cmd;
            counters_cmd;
            tables_cmd;
            figure4_cmd;
            estimate_cmd;
            ablations_cmd;
            portability_cmd;
            priority_cmd;
            realistic_cmd;
            integrate_cmd;
            dma_cmd;
            lint_cmd;
            audit_cmd;
            signatures_cmd;
            report_cmd;
            sweep_cmd;
            profile_cmd;
            serve_cmd;
            query_cmd;
            stats_cmd;
            obs_cmd;
          ]))
